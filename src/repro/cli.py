"""Command-line interface: ``python -m repro <command> ...``.

Four subcommands mirror the example scripts so users can reproduce any
result without writing code:

* ``apsp`` — run one APSP algorithm on a generated instance, verify it,
  print the per-step round ledger.
* ``table1`` — regenerate Table 1 (measured) on a size sweep.
* ``blocker`` — run the four blocker constructions on one instance.
* ``step6`` — standalone reversed q-sink comparison (pipelined vs
  broadcast).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from repro.analysis import fit_exponent, render_table
from repro.analysis.tables import TABLE1_ROWS, table1_measured
from repro.congest import CongestNetwork
from repro.csssp import build_csssp
from repro.graphs import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    grid2d,
    layered_digraph,
    path_graph,
    random_geometric,
    ring_graph,
    star_of_paths,
    watts_strogatz,
)
from repro.apsp import (
    baseline_n32_apsp,
    deterministic_apsp,
    five_thirds_apsp,
    naive_bf_apsp,
    randomized_apsp,
)

ALGORITHMS = {
    "det-n43": deterministic_apsp,
    "det-n32": baseline_n32_apsp,
    "rand-n43": randomized_apsp,
    "det-n53": five_thirds_apsp,
    "naive-bf": naive_bf_apsp,
}


def make_graph(family: str, n: int, seed: int):
    """Instantiate one of the generator families at roughly ``n`` nodes."""
    if family == "er":
        return erdos_renyi(n, p=max(0.1, 4.0 / n), seed=seed)
    if family == "er-directed":
        return erdos_renyi(n, p=max(0.12, 5.0 / n), seed=seed, directed=True)
    if family == "grid":
        side = max(2, round(math.sqrt(n)))
        return grid2d(side, max(2, n // side), seed=seed)
    if family == "ring":
        return ring_graph(n, seed=seed)
    if family == "path":
        return path_graph(n, seed=seed)
    if family == "complete":
        return complete_graph(n, seed=seed)
    if family == "ba":
        return barabasi_albert(n, seed=seed)
    if family == "star":
        return star_of_paths(max(2, n // 6), 6, seed=seed)
    if family == "layered":
        return layered_digraph(max(2, n // 4), 4, seed=seed)
    if family == "rgg":
        return random_geometric(n, seed=seed)
    if family == "ws":
        return watts_strogatz(n, seed=seed)
    raise SystemExit(f"unknown graph family {family!r}")


GRAPH_FAMILIES = [
    "er", "er-directed", "grid", "ring", "path", "complete", "ba", "star",
    "layered", "rgg", "ws",
]


def cmd_apsp(args) -> int:
    graph = make_graph(args.family, args.n, args.seed)
    net = CongestNetwork(graph)
    algo = ALGORITHMS[args.algorithm]
    result = algo(net, graph)
    if not args.no_verify:
        result.verify(graph)
        if result.pred is not None:
            result.verify_paths(graph)
        print("output verified exact (distances and routing)")
    print(f"{result.algorithm} on {graph}: {result.rounds} rounds, "
          f"meta={result.meta}")
    print(result.log.render())
    return 0


def cmd_table1(args) -> int:
    ns = args.sizes or [16, 24, 32, 48]
    graphs = [make_graph(args.family, n, args.seed) for n in ns]
    data = table1_measured(graphs, verify=not args.no_verify)
    rows = []
    for spec in TABLE1_ROWS:
        if spec.run is None:
            rows.append([spec.key, spec.claimed, "(quoted bound)", ""])
            continue
        series = data[spec.key]
        rounds = [r for (_n, r, _res) in series]
        alpha = fit_exponent([g.n for g in graphs], rounds).alpha
        rows.append([spec.key, spec.claimed,
                     " ".join(map(str, rounds)), f"{alpha:.2f}"])
    print(render_table(
        ["algorithm", "claimed", f"rounds at n={[g.n for g in graphs]}",
         "fitted alpha"],
        rows,
        title=f"Table 1 measured on {args.family}",
    ))
    return 0


def cmd_blocker(args) -> int:
    from repro.blocker import (
        deterministic_blocker_set,
        greedy_blocker_set,
        is_blocker_set,
        randomized_blocker_set,
        sampling_blocker_set,
    )

    graph = make_graph(args.family, args.n, args.seed)
    net = CongestNetwork(graph)
    h = args.h or max(1, round(graph.n ** (1 / 3)))
    coll, stats = build_csssp(net, graph, range(graph.n), h)
    print(f"{graph}: h={h}, {coll.path_count()} paths "
          f"(CSSSP in {stats.rounds} rounds)")
    rows = []
    for name, fn in [
        ("Algorithm 2' (det)", deterministic_blocker_set),
        ("Algorithm 2 (rand)", randomized_blocker_set),
        ("greedy [2]", greedy_blocker_set),
        ("sampling", sampling_blocker_set),
    ]:
        res = fn(net, coll)
        assert is_blocker_set(coll, res.blockers)
        rows.append([name, res.q, res.stats.rounds, len(res.picks)])
    print(render_table(
        ["construction", "|Q|", "rounds", "selection steps"], rows
    ))
    return 0


def cmd_step6(args) -> int:
    from repro.blocker import deterministic_blocker_set
    from repro.pipeline import broadcast_delivery, reversed_qsink
    from repro.pipeline.values import reference_values

    graph = make_graph(args.family, args.n, args.seed)
    net = CongestNetwork(graph)
    h = max(1, round(graph.n ** (1 / 3)))
    coll, _ = build_csssp(net, graph, range(graph.n), h)
    q_nodes = sorted(deterministic_blocker_set(net, coll).blockers)
    values = reference_values(graph, q_nodes)
    qs = reversed_qsink(net, graph, q_nodes, values)
    _, bstats = broadcast_delivery(net, q_nodes, values)
    print(f"{graph}: |Q|={len(q_nodes)} |Q'|={len(qs.q_prime)} "
          f"|B|={len(qs.bottleneck.bottlenecks)}")
    print(f"pipelined Step 6: {qs.stats.rounds} rounds")
    print(f"broadcast Step 6: {bstats.rounds} rounds")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Faster Deterministic APSP in the "
        "Congest Model' (Agarwal & Ramachandran, SPAA 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("apsp", help="run one APSP algorithm")
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="det-n43")
    p.add_argument("--family", choices=GRAPH_FAMILIES, default="er")
    p.add_argument("--n", type=int, default=27)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=cmd_apsp)

    p = sub.add_parser("table1", help="regenerate Table 1 (measured)")
    p.add_argument("--family", choices=GRAPH_FAMILIES, default="er")
    p.add_argument("--sizes", type=int, nargs="*")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("blocker", help="compare blocker constructions")
    p.add_argument("--family", choices=GRAPH_FAMILIES, default="er")
    p.add_argument("--n", type=int, default=24)
    p.add_argument("--h", type=int)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_blocker)

    p = sub.add_parser("step6", help="pipelined vs broadcast delivery")
    p.add_argument("--family", choices=GRAPH_FAMILIES, default="er")
    p.add_argument("--n", type=int, default=32)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_step6)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
