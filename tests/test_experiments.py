"""The scenario-sweep subsystem: specs, expansion, execution, caching."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ScenarioMatrix,
    ScenarioSpec,
    SweepExecutor,
    make_graph,
    run_scenario,
)
from repro.experiments.executor import strip_timing
from repro.experiments.runner import fault_plan_seed, scenario_seed
from repro.experiments.spec import THREE_PHASE

# ---------------------------------------------------------------------------
# specs and hashing


def test_spec_key_is_stable_and_axis_sensitive():
    a = ScenarioSpec(family="er", n=16, algorithm="naive-bf", seed=1)
    assert a.key == ScenarioSpec(family="er", n=16, algorithm="naive-bf",
                                 seed=1).key
    for other in (
        ScenarioSpec(family="grid", n=16, algorithm="naive-bf", seed=1),
        ScenarioSpec(family="er", n=18, algorithm="naive-bf", seed=1),
        ScenarioSpec(family="er", n=16, algorithm="det-n43", seed=1),
        ScenarioSpec(family="er", n=16, algorithm="naive-bf", seed=2),
        ScenarioSpec(family="er", n=16, algorithm="naive-bf", seed=1,
                     weights="unit"),
        ScenarioSpec(family="er", n=16, algorithm="naive-bf", seed=1,
                     strict=False),
    ):
        assert other.key != a.key


def test_spec_roundtrips_through_dict():
    spec = ScenarioSpec(family="er", n=16, algorithm=THREE_PHASE, seed=3,
                        blocker="greedy", delivery="broadcast",
                        h_exponent=0.5)
    again = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec and again.key == spec.key


def test_spec_validation():
    with pytest.raises(ValueError):
        ScenarioSpec(family="torus", n=16, algorithm="naive-bf")
    with pytest.raises(ValueError):
        ScenarioSpec(family="er", n=16, algorithm="does-not-exist")
    with pytest.raises(ValueError):
        ScenarioSpec(family="er", n=16, algorithm="naive-bf",
                     weights="negative")
    with pytest.raises(ValueError):  # driver axes only apply to 3phase
        ScenarioSpec(family="er", n=16, algorithm="naive-bf",
                     blocker="greedy")
    with pytest.raises(ValueError):
        ScenarioSpec(family="er", n=16, algorithm=THREE_PHASE,
                     blocker="imaginary")
    with pytest.raises(ValueError):  # zero weights exist only for er families
        ScenarioSpec(family="path", n=16, algorithm="naive-bf",
                     weights="zero")


def test_3phase_defaults_normalize_to_one_key():
    implicit = ScenarioSpec(family="er", n=16, algorithm=THREE_PHASE)
    explicit = ScenarioSpec(family="er", n=16, algorithm=THREE_PHASE,
                            blocker="derandomized", delivery="pipelined",
                            h_exponent=1 / 3)
    assert implicit == explicit and implicit.key == explicit.key
    # explicit zero is a real value, not "use the default"
    flat = ScenarioSpec(family="er", n=16, algorithm=THREE_PHASE,
                        h_exponent=0.0)
    assert flat.h_exponent == 0.0 and flat.key != implicit.key


def test_scenario_seed_ignores_driver_axes():
    base = ScenarioSpec(family="er", n=16, algorithm=THREE_PHASE, seed=1)
    other = ScenarioSpec(family="er", n=16, algorithm=THREE_PHASE, seed=1,
                         blocker="sampling", delivery="broadcast")
    assert scenario_seed(base) == scenario_seed(other)
    assert scenario_seed(base) != scenario_seed(
        ScenarioSpec(family="er", n=16, algorithm=THREE_PHASE, seed=2))


# ---------------------------------------------------------------------------
# matrix expansion


def test_matrix_expansion_is_the_cross_product():
    matrix = ScenarioMatrix(families=("er", "path"), sizes=(8, 12),
                            algorithms=("naive-bf", "det-n43"), seeds=(1, 2, 3))
    specs = matrix.expand()
    assert len(specs) == len(matrix) == 2 * 2 * 2 * 3
    assert len({s.key for s in specs}) == len(specs)  # all distinct
    assert specs == matrix.expand()  # deterministic order


def test_matrix_driver_axes_only_multiply_3phase():
    matrix = ScenarioMatrix(families=("er",), sizes=(12,),
                            algorithms=("naive-bf", THREE_PHASE),
                            deliveries=("pipelined", "broadcast"))
    specs = matrix.expand()
    # naive-bf collapses the delivery axis; 3phase crosses it.
    assert len(specs) == 1 + 2
    assert sum(s.algorithm == THREE_PHASE for s in specs) == 2


def test_weight_models():
    unit = make_graph("er", 12, seed=3, weights="unit")
    weights = {w for v in range(unit.n) for (_u, w, _tb) in unit.out_edges(v)}
    assert weights == {1.0}
    integer = make_graph("er", 12, seed=3, weights="integer")
    assert all(w == int(w) for v in range(integer.n)
               for (_u, w, _tb) in integer.out_edges(v))
    with pytest.raises(ValueError):
        make_graph("grid", 12, seed=3, weights="zero")  # er-only model
    with pytest.raises(ValueError):
        make_graph("er", 12, seed=3, weights="no-such-model")


# ---------------------------------------------------------------------------
# execution: serial == parallel, record contents


SMALL = ScenarioMatrix(families=("er", "path"), sizes=(8, 12),
                       algorithms=("naive-bf", "det-n43"), seeds=(1,))


def test_parallel_equals_serial(tmp_path):
    specs = SMALL.expand()
    assert len(specs) == 8
    serial = SweepExecutor(cache_dir=str(tmp_path / "s"), workers=1).run(specs)
    parallel = SweepExecutor(cache_dir=str(tmp_path / "p"), workers=2).run(specs)
    assert [r["hash"] for r in serial] == [s.key for s in specs]
    for a, b in zip(serial, parallel):
        assert strip_timing(a) == strip_timing(b)
        assert a["dist_sha256"] == b["dist_sha256"]
        assert a["rounds"] == b["rounds"]
    # the cache files are byte-identical modulo the timing block
    for p in sorted((tmp_path / "s").glob("*.json")):
        a = strip_timing(json.loads(p.read_text()))
        b = strip_timing(json.loads((tmp_path / "p" / p.name).read_text()))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_cache_hit_skips_execution(tmp_path):
    specs = SMALL.expand()[:3]
    ex = SweepExecutor(cache_dir=str(tmp_path), workers=1)
    first = ex.run(specs)
    assert (ex.executed, ex.cached) == (3, 0)
    mtimes = {p.name: p.stat().st_mtime_ns for p in tmp_path.glob("*.json")}
    second = ex.run(specs)
    assert (ex.executed, ex.cached) == (0, 3)
    assert [strip_timing(r) for r in first] == [strip_timing(r) for r in second]
    # cached files were not rewritten
    assert mtimes == {p.name: p.stat().st_mtime_ns
                      for p in tmp_path.glob("*.json")}


def test_unverified_cache_entries_not_served_to_verifying_sweeps(tmp_path):
    specs = SMALL.expand()[:2]
    unverified = SweepExecutor(cache_dir=str(tmp_path), workers=1,
                               verify=False)
    unverified.run(specs)
    checking = SweepExecutor(cache_dir=str(tmp_path), workers=1, verify=True)
    records = checking.run(specs)
    assert (checking.executed, checking.cached) == (2, 0)
    assert all(r["verified"] for r in records)
    # and the healed cache now satisfies verifying sweeps
    checking.run(specs)
    assert (checking.executed, checking.cached) == (0, 2)
    # ... while a later --no-verify sweep happily reuses verified records
    unverified.run(specs)
    assert (unverified.executed, unverified.cached) == (0, 2)


def test_force_reruns_cached_scenarios(tmp_path):
    specs = SMALL.expand()[:2]
    SweepExecutor(cache_dir=str(tmp_path), workers=1).run(specs)
    ex = SweepExecutor(cache_dir=str(tmp_path), workers=1, force=True)
    ex.run(specs)
    assert (ex.executed, ex.cached) == (2, 0)


def test_corrupt_cache_entry_is_rerun(tmp_path):
    specs = SMALL.expand()[:1]
    ex = SweepExecutor(cache_dir=str(tmp_path), workers=1)
    ex.run(specs)
    path = ex.cache_path(specs[0])
    path.write_text("{ not json")
    ex.run(specs)
    assert ex.executed == 1
    assert json.loads(path.read_text())["hash"] == specs[0].key  # healed


def test_record_contents_and_verification():
    spec = ScenarioSpec(family="er", n=12, algorithm="det-n43", seed=1)
    rec = run_scenario(spec)
    assert rec["hash"] == spec.key
    assert rec["spec"] == spec.to_dict()
    assert rec["verified"] is True
    assert rec["rounds"] > 0 and rec["messages"] > 0
    assert rec["finite_pairs"] == 12 * 12  # er graphs are connected
    assert set(rec["step_rounds"]) == set(rec["step_congestion"])
    assert rec["timing"]["wall_s"] > 0
    json.dumps(rec)  # JSON-safe end to end


def test_fast_engine_matches_strict_engine():
    strict = run_scenario(
        ScenarioSpec(family="er", n=12, algorithm="det-n43", seed=5))
    fast = run_scenario(
        ScenarioSpec(family="er", n=12, algorithm="det-n43", seed=5,
                     strict=False))
    assert strict["dist_sha256"] == fast["dist_sha256"]
    assert strict["rounds"] == fast["rounds"]
    assert strict["messages"] == fast["messages"]


def test_3phase_scenarios_run_all_deliveries():
    for delivery in ("pipelined", "broadcast"):
        rec = run_scenario(
            ScenarioSpec(family="er", n=10, algorithm=THREE_PHASE, seed=2,
                         blocker="sampling", delivery=delivery))
        assert rec["verified"] and rec["algorithm"].startswith("3phase")


# ---------------------------------------------------------------------------
# aggregation


def test_sweep_table_renders(tmp_path):
    records = SweepExecutor(cache_dir=None, workers=1).run(SMALL.expand())
    from repro.analysis import sweep_table

    table = sweep_table(records)
    assert "naive-bf" in table and "det-n43" in table
    assert "er" in table and "path" in table
    assert "fitted alpha" in table


# ---------------------------------------------------------------------------
# fault axes: hash stability, expansion, record contract, cache identity


def test_fault_axes_leave_fault_free_hashes_untouched():
    # The committed record cache, REPORT.json, and the perf baselines are
    # all keyed on fault-free scenario hashes; the axis existing (or
    # being spelled out at its defaults) must not move any of them.
    base = ScenarioSpec(family="er", n=16, algorithm="naive-bf", seed=1)
    spelled = ScenarioSpec(family="er", n=16, algorithm="naive-bf", seed=1,
                           faults="none", fault_seed=9)
    assert spelled.key == base.key  # unused stream seed normalized away
    assert "faults" not in base.to_dict()
    assert "fault_seed" not in base.to_dict()

    faulted = ScenarioSpec(family="er", n=16, algorithm="naive-bf", seed=1,
                           faults="drop", strict=False)
    assert faulted.key != base.key
    other_stream = ScenarioSpec(family="er", n=16, algorithm="naive-bf",
                                seed=1, faults="drop", fault_seed=2,
                                strict=False)
    assert other_stream.key != faulted.key  # the stream is a real axis
    again = ScenarioSpec.from_dict(json.loads(json.dumps(faulted.to_dict())))
    assert again == faulted and again.key == faulted.key
    assert "faults=drop#1" in faulted.label


def test_matrix_fault_axes_multiply_only_faulted_scenarios():
    matrix = ScenarioMatrix(families=["er"], sizes=[16],
                            algorithms=["naive-bf"], strict=False,
                            faults=["none", "drop"], fault_seeds=[1, 2])
    specs = matrix.expand()
    # 1 fault-free + 2 drop streams: "none" collapses the seed axis.
    assert [(s.faults, s.fault_seed) for s in specs] == [
        ("none", 1), ("drop", 1), ("drop", 2)]


def test_faulted_record_contract_and_determinism():
    spec = ScenarioSpec(family="er", n=14, algorithm="naive-bf", seed=2,
                        faults="drop", strict=False)
    rec = run_scenario(spec)
    assert rec["hash"] == spec.key
    assert rec["faults"]["model"] == "drop"
    assert rec["faults"]["fault_seed"] == 1
    assert rec["faults"]["plan_seed"] == fault_plan_seed(spec)
    assert rec["faults"]["events"].get("drop", 0) > 0
    assert len(rec["faults"]["trace_sha256"]) == 16
    assert rec["fault_outcome"] in ("ok", "divergent")
    assert rec["baseline"]["rounds"] > 0
    assert rec["baseline"]["dist_sha256"]
    assert rec["verified"] is True
    json.dumps(rec)  # JSON-safe end to end
    # The whole faulted record is a pure function of the spec.
    assert strip_timing(run_scenario(spec)) == strip_timing(rec)


def test_fault_plan_seed_is_a_function_of_key_and_stream():
    a = ScenarioSpec(family="er", n=16, algorithm="naive-bf", seed=1,
                     faults="drop", strict=False)
    b = ScenarioSpec(family="er", n=16, algorithm="naive-bf", seed=1,
                     faults="drop", fault_seed=2, strict=False)
    c = ScenarioSpec(family="er", n=24, algorithm="naive-bf", seed=1,
                     faults="drop", strict=False)
    assert fault_plan_seed(a) == fault_plan_seed(a)
    assert len({fault_plan_seed(s) for s in (a, b, c)}) == 3


def test_faulted_records_cache_byte_identically(tmp_path):
    # The ISSUE acceptance check: sweeping the same faulted matrix twice
    # leaves byte-identical cached records (the second pass is all cache
    # hits and rewrites nothing).
    matrix = ScenarioMatrix(families=["er"], sizes=[14],
                            algorithms=["naive-bf"], strict=False,
                            faults=["drop", "crash"])
    specs = matrix.expand()
    ex = SweepExecutor(cache_dir=str(tmp_path), workers=1)
    first = ex.run(specs)
    assert (ex.executed, ex.cached) == (2, 0)
    blobs = {p.name: p.read_bytes() for p in tmp_path.glob("*.json")}
    second = ex.run(specs)
    assert (ex.executed, ex.cached) == (0, 2)
    assert [strip_timing(r) for r in first] == [strip_timing(r) for r in second]
    assert blobs == {p.name: p.read_bytes() for p in tmp_path.glob("*.json")}
    # A fresh directory reproduces the same deterministic payloads.
    other = SweepExecutor(cache_dir=str(tmp_path / "b"), workers=1).run(specs)
    for a, b in zip(first, other):
        assert strip_timing(a) == strip_timing(b)


def test_faulted_timing_charges_each_side_its_own_clock():
    # The faulted path runs the fault-free twin first; the faulted run's
    # wall_s must not be double-charged with the baseline's wall time.
    spec = ScenarioSpec(family="er", n=10, algorithm="naive-bf",
                        strict=False, faults="drop")
    timing = run_scenario(spec, verify=False)["timing"]
    assert set(timing) == {"wall_s", "baseline_wall_s"}
    assert timing["wall_s"] > 0 and timing["baseline_wall_s"] > 0
    # fault-free records keep the single-clock shape
    free = ScenarioSpec(family="er", n=10, algorithm="naive-bf",
                        strict=False)
    assert set(run_scenario(free, verify=False)["timing"]) == {"wall_s"}
