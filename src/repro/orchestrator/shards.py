"""Deterministic scenario-hash sharding of an expanded matrix.

Shard ``i`` of ``N`` owns exactly the scenarios whose hash satisfies
``int(hash, 16) % N == i``.  The assignment is a pure function of the
scenario hash (which is itself a pure function of the spec), so any
host — or any rerun — recomputes the same partition from the config
alone: no shard manifest needs to be shipped around, and a shard rerun
finds its own completed scenarios already sitting in the shared
per-record JSON cache and retries only its misses.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.experiments.spec import ScenarioSpec


def shard_index(spec: ScenarioSpec, n_shards: int) -> int:
    """Which shard of ``n_shards`` owns ``spec`` (hash-prefix modulus)."""
    if n_shards < 1:
        raise ValueError(f"shard count must be >= 1, got {n_shards}")
    return int(spec.key, 16) % n_shards


def shard_specs(
    specs: Sequence[ScenarioSpec], n_shards: int
) -> List[List[ScenarioSpec]]:
    """Partition ``specs`` into ``n_shards`` hash-owned lists.

    Every spec lands in exactly one shard (``shard_index``), and each
    shard preserves the input (matrix-expansion) order, so the union of
    all shards is a stable permutation of the input.
    """
    shards: List[List[ScenarioSpec]] = [[] for _ in range(n_shards)]
    for spec in specs:
        shards[shard_index(spec, n_shards)].append(spec)
    return shards


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a CLI ``i/N`` shard selector into ``(index, count)``.

    ``i`` is zero-based and must satisfy ``0 <= i < N``; anything else —
    wrong separator, non-integers, a negative index, ``i >= N`` — raises
    a :class:`ValueError` that names the offending spec so the CLI error
    is self-explanatory.
    """
    parts = text.split("/")
    if len(parts) != 2:
        raise ValueError(
            f"invalid shard spec {text!r}: expected the form i/N, e.g. 0/2"
        )
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"invalid shard spec {text!r}: both i and N must be integers"
        ) from None
    if count < 1:
        raise ValueError(
            f"invalid shard spec {text!r}: shard count N must be >= 1"
        )
    if not 0 <= index < count:
        raise ValueError(
            f"invalid shard spec {text!r}: shard index must satisfy "
            f"0 <= i < {count} (indices are zero-based)"
        )
    return index, count


__all__ = ["parse_shard", "shard_index", "shard_specs"]
