"""The folklore randomized blocker baseline (Step 2's "very simple" option).

Every node joins ``Q`` independently with probability ``c ln n / h``; a
random set of that density hits every length-``h`` path w.h.p. (the paper
quotes size ``O((n/h) log n)``).  The distributed realization is Las Vegas:
sample, broadcast the member ids (Lemma A.2), verify coverage with one
Compute-Pi-style flood (Algorithm 3 pattern) plus an OR-convergecast, and
resample on failure.  Used for the randomized rows of Table 1 / F2 / F3.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.congest.metrics import PhaseLog
from repro.congest.network import CongestNetwork
from repro.csssp.collection import CSSSPCollection
from repro.blocker.randomized import BlockerResult, PickRecord
from repro.blocker.verify import distributed_coverage_check
from repro.primitives.bfs import build_bfs_tree
from repro.primitives.broadcast import gather_and_broadcast


def sampling_blocker_set(
    net: CongestNetwork,
    coll: CSSSPCollection,
    seed: int = 0,
    density: float = 1.0,
    max_attempts: int = 64,
) -> BlockerResult:
    """Sample-and-verify blocker set of expected size ``O((n/h) log n)``.

    ``density`` scales the inclusion probability ``density * ln(n) / h``
    (clamped to 1); higher densities trade size for fewer retries.
    """
    n, h = coll.n, coll.h
    rng = random.Random(seed)
    p = min(1.0, density * math.log(max(n, 2)) / h)
    log = PhaseLog()
    bfs, stats = build_bfs_tree(net)
    log.add("bfs-tree", stats)

    picks = []
    for attempt in range(1, max_attempts + 1):
        members = sorted(v for v in range(n) if rng.random() < p)
        items = [[(v,)] if v in set(members) else [] for v in range(n)]
        _, stats = gather_and_broadcast(net, bfs, items, label="announce-sample")
        log.add("announce-sample", stats)
        covered, stats = distributed_coverage_check(
            net, coll, members, bfs=bfs, label="verify"
        )
        log.add("verify", stats)
        picks.append(
            PickRecord(
                kind="sample",
                stage=0,
                phase=0,
                added=tuple(members),
                pij_size=coll.path_count(),
                covered_pij=0,
                trials=attempt,
            )
        )
        if covered:
            return BlockerResult(
                blockers=members, stats=log.total("sampling"), log=log, picks=picks
            )
    raise RuntimeError(
        f"sampling failed to cover within {max_attempts} attempts "
        f"(p={p:.3f}) — raise density"
    )


__all__ = ["sampling_blocker_set"]
