"""Resumable sharded sweep orchestration: one config file, one fleet run.

The orchestrator coordinates a sweep that is too big for one
:class:`~repro.experiments.executor.SweepExecutor` invocation as a
resumable DAG of stages::

    generate -> shard-0 .. shard-(N-1) -> fit -> report

* :mod:`repro.orchestrator.config` parses a declarative YAML/JSON config
  (matrix axes or a sweep preset, shard count, budget, record/output
  dirs) into a validated :class:`~repro.orchestrator.config.OrchestratorPlan`;
* :mod:`repro.orchestrator.shards` partitions the expanded matrix
  deterministically by scenario-hash prefix (shard ``i/N`` owns the
  scenarios with ``hash % N == i``), so any host can recompute its share
  from the config alone;
* :mod:`repro.orchestrator.dag` is the stage graph: explicit per-stage
  status, dependency-driven unblocking, and partial-completion
  propagation (a shard that salvaged records still unblocks ``fit``);
* :mod:`repro.orchestrator.state` journals progress as atomic
  append-only JSONL so a killed run resumes without re-executing
  completed stages;
* :mod:`repro.orchestrator.run` drives it all (``python -m repro
  orchestrate <config> [--resume] [--shard i/N] [--status]``) and makes
  the terminal ``report`` stage emit the same ``RESULTS.md`` /
  ``REPORT.json`` as a monolithic ``repro sweep`` + ``repro report``.
"""

from repro.orchestrator.config import ConfigError, OrchestratorPlan, load_plan
from repro.orchestrator.dag import (
    BLOCKED,
    COMPLETED,
    COMPLETED_PARTIAL,
    COMPLETED_SUCCESS,
    FAILED,
    NOT_STARTED,
    RUNNING,
    STATUSES,
    TERMINAL,
    Stage,
    StageGraph,
    StageGraphError,
    build_sweep_graph,
)
from repro.orchestrator.run import Orchestrator, drive
from repro.orchestrator.shards import parse_shard, shard_index, shard_specs
from repro.orchestrator.state import Journal, StateError, plan_fingerprint, replay

__all__ = [
    "BLOCKED",
    "COMPLETED",
    "COMPLETED_PARTIAL",
    "COMPLETED_SUCCESS",
    "FAILED",
    "NOT_STARTED",
    "RUNNING",
    "STATUSES",
    "TERMINAL",
    "ConfigError",
    "Journal",
    "Orchestrator",
    "OrchestratorPlan",
    "Stage",
    "StageGraph",
    "StageGraphError",
    "StateError",
    "build_sweep_graph",
    "drive",
    "load_plan",
    "parse_shard",
    "plan_fingerprint",
    "replay",
    "shard_index",
    "shard_specs",
]
