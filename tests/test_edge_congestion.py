"""Per-edge congestion tracking (the Ghaffari-scheduling quantity).

The paper contrasts its deterministic pipeline with the randomized
scheduling of [9], whose bound is ``O(d + c log n)`` in terms of dilation
and *edge congestion* ``c``.  The engine can record per-edge loads so
that comparison is measurable.
"""

from __future__ import annotations

import pytest

from repro.congest import CongestNetwork, RoundStats
from repro.csssp import build_csssp
from repro.graphs import broom, path_graph
from repro.pipeline.short_range import round_robin_pipeline
from repro.primitives import bellman_ford

from conftest import graph_of


def test_edge_tracking_off_by_default():
    g = path_graph(5, seed=0)
    net = CongestNetwork(g)
    res = bellman_ford(net, g, 0)
    assert res.rounds.per_edge_sent == {}
    assert res.rounds.max_edge_congestion == 0


def test_edge_tracking_counts_bf_loads():
    g = path_graph(5, seed=0)
    net = CongestNetwork(g, track_edges=True)
    res = bellman_ford(net, g, 0)
    # One label crosses each forward edge exactly once on a path.
    for v in range(g.n - 1):
        assert res.rounds.per_edge_sent[(v, v + 1)] == 1
    assert res.rounds.max_edge_congestion >= 1


def test_edge_congestion_merges_across_phases():
    a = RoundStats(per_edge_sent={(0, 1): 3})
    b = RoundStats(per_edge_sent={(0, 1): 2, (1, 2): 5})
    c = a + b
    assert c.per_edge_sent == {(0, 1): 5, (1, 2): 5}
    assert c.max_edge_congestion == 5
    assert a.per_edge_sent == {(0, 1): 3}  # add does not mutate


def test_pipeline_edge_congestion_equals_handle_load():
    """On a broom every value to the sink crosses the first handle edge:
    edge congestion there = number of values = n - 1."""
    g = broom(handle_len=6, brush=8, seed=1)
    net = CongestNetwork(g, track_edges=True)
    cq, _ = build_csssp(net, g, [0], g.n, orientation="in")
    values = [{0: (float(v), 0, 0)} if v != 0 else {} for v in range(g.n)]
    net.total = RoundStats()  # isolate the pipeline phase
    delivered, stats, _trace = round_robin_pipeline(net, cq, values)
    assert stats.per_edge_sent[(1, 0)] == g.n - 1
    assert stats.max_edge_congestion == g.n - 1
    # Bandwidth respected: per-round load on any edge never exceeded 1,
    # so rounds >= the busiest edge's total load.
    assert stats.rounds >= stats.max_edge_congestion


def test_dilation_plus_congestion_bound_shape():
    """Measured pipeline rounds sit below dilation + congestion — the
    quantity the randomized scheduler of [9] would guarantee up to logs,
    achieved here deterministically."""
    g = graph_of("star")
    net = CongestNetwork(g, track_edges=True)
    sinks = [v for v in range(g.n) if v % 5 == 0 and v > 0]
    cq, _ = build_csssp(net, g, sinks, g.n, orientation="in")
    values = [
        {c: (float(v), 0, 0) for c in sinks if cq.trees[c].live(v) and v != c}
        for v in range(g.n)
    ]
    delivered, stats, _ = round_robin_pipeline(net, cq, values)
    dilation = max(max(t.depth) for t in cq.trees.values())
    assert stats.rounds <= dilation + stats.max_node_congestion + len(sinks)
