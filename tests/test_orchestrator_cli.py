"""`repro orchestrate`: end-to-end CLI runs, status output, error paths."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main
from repro.experiments.runner import run_scenario_dict
from repro.orchestrator.config import load_plan
from repro.orchestrator.run import Orchestrator

MATRIX = {
    "families": ["er", "path"],
    "sizes": [10],
    "algorithms": ["naive-bf"],
    "seeds": [1, 2],
}


def write_config(tmp_path, name="sweep.json", **overrides):
    data = {
        "matrix": dict(MATRIX),
        "shards": 2,
        "records_dir": str(tmp_path / "records"),
        "state_dir": str(tmp_path / "state"),
    }
    data.update(overrides)
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


class TestFullRun:
    def test_orchestrate_runs_to_completion(self, tmp_path, capsys):
        config = write_config(tmp_path)
        rc = main(["orchestrate", str(config)])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("generate", "shard-0", "shard-1", "fit", "report"):
            assert name in out
        assert "completed_success" in out
        plan = load_plan(config)
        assert pathlib.Path(plan.results_path).exists()
        assert pathlib.Path(plan.json_path).exists()
        assert plan.journal_path.exists()
        payload = json.loads(pathlib.Path(plan.json_path).read_text())
        assert payload["scenarios"] == 4

    def test_single_shard_mode_leaves_rest_blocked(self, tmp_path, capsys):
        config = write_config(tmp_path)
        rc = main(["orchestrate", str(config), "--shard", "1/2"])
        out = capsys.readouterr().out
        assert rc == 0  # blocked non-terminal stages are expected here
        assert "waiting on: shard-0" in out
        assert not pathlib.Path(load_plan(config).json_path).exists()

    def test_rerun_without_resume_refused(self, tmp_path, capsys):
        config = write_config(tmp_path)
        assert main(["orchestrate", str(config)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(["orchestrate", str(config)])
        assert "already has a journal" in str(exc.value)
        assert "--resume" in str(exc.value)
        # and with --resume the completed run is a cheap no-op
        assert main(["orchestrate", str(config), "--resume"]) == 0


class TestStatus:
    def test_status_before_any_run(self, tmp_path, capsys):
        config = write_config(tmp_path)
        rc = main(["orchestrate", str(config), "--status"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no journal" in out and "(run not started)" in out
        assert "not_started" in out  # the table still renders

    def test_status_names_failing_stage_and_scenario_keys(
            self, tmp_path, capsys):
        config = write_config(tmp_path)
        plan = load_plan(config)
        specs = plan.specs()
        doomed = {specs[0].key}

        def flaky_runner(spec_dict, verify):
            record = run_scenario_dict(spec_dict, verify)
            if record["hash"] in doomed:
                raise RuntimeError("injected scenario failure")
            return record

        graph = Orchestrator(plan, runner=flaky_runner).run()
        assert graph.done()
        capsys.readouterr()
        rc = main(["orchestrate", str(config), "--status"])
        out = capsys.readouterr().out
        assert rc == 0
        # the owning shard completed partial, and the exact
        # `[fail] <key> <label>: <error>` line names the scenario
        assert "completed_partial" in out
        assert f"[fail] {specs[0].key} {specs[0].label}: " in out
        assert "injected scenario failure" in out

    def test_failed_run_exits_nonzero_and_names_stages(
            self, tmp_path, capsys, monkeypatch):
        config = write_config(tmp_path)

        def broken_runner(spec_dict, verify):
            raise RuntimeError("all scenarios broken")

        # the real CLI path, with the always-failing runner injected
        import repro.orchestrator

        class BrokenOrchestrator(Orchestrator):
            def __init__(self, plan, **kwargs):
                kwargs["runner"] = broken_runner
                super().__init__(plan, **kwargs)

        monkeypatch.setattr(
            repro.orchestrator, "Orchestrator", BrokenOrchestrator)
        rc = main(["orchestrate", str(config)])
        out = capsys.readouterr().out
        assert rc == 1
        # zero salvaged records -> failed shard, propagated to fit/report
        assert "orchestration finished with problems:" in out
        assert "shard-0 (failed)" in out
        assert "fit (failed)" in out and "report (failed)" in out
        assert "--resume retries only the failures" in out


class TestErrorPaths:
    def test_unknown_config_path(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["orchestrate", str(tmp_path / "missing.yaml")])
        assert "repro orchestrate: config not found" in str(exc.value)

    def test_malformed_yaml_names_line(self, tmp_path):
        bad = tmp_path / "bad.yaml"
        bad.write_text("shards: 2\n\tbroken: tab indentation\n")
        with pytest.raises(SystemExit) as exc:
            main(["orchestrate", str(bad)])
        message = str(exc.value)
        assert "malformed YAML" in message and "line 2" in message

    @pytest.mark.parametrize("shard,needle", [
        ("2/2", "0 <= i <"),
        ("a/b", "invalid shard spec"),
        ("-1/2", "0 <= i <"),
        ("1", "invalid shard spec"),
    ])
    def test_invalid_shard_specs(self, tmp_path, shard, needle):
        config = write_config(tmp_path)
        with pytest.raises(SystemExit) as exc:
            # --shard=<spec> so argparse does not eat a leading '-'
            main(["orchestrate", str(config), f"--shard={shard}"])
        assert needle in str(exc.value)

    def test_shard_count_mismatch_names_plan_source(self, tmp_path):
        config = write_config(tmp_path)
        with pytest.raises(SystemExit) as exc:
            main(["orchestrate", str(config), "--shard", "1/3"])
        message = str(exc.value)
        assert "--shard 1/3 does not match the plan's 2 shard(s)" in message
        assert str(config) in message
