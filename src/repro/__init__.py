"""repro — reproduction of Agarwal & Ramachandran, "Faster Deterministic
All Pairs Shortest Paths in Congest Model" (SPAA 2020, arXiv:2005.09588).

A from-scratch CONGEST-model simulator plus the paper's ``O~(n^{4/3})``
deterministic APSP algorithm and every baseline it compares against.

Quickstart::

    from repro.graphs import erdos_renyi
    from repro.congest import CongestNetwork
    from repro.apsp import deterministic_apsp

    g = erdos_renyi(27, p=0.15, seed=1)
    net = CongestNetwork(g)
    result = deterministic_apsp(net, g)
    result.verify(g)          # exact vs centralized Dijkstra
    print(result.rounds)      # CONGEST rounds charged
    print(result.log.render())  # per-step budget (Theorem 1.1)

Scenario sweeps (many instances, many algorithms, many seeds, across
worker processes with result caching) go through
:mod:`repro.experiments`::

    from repro.experiments import ScenarioMatrix, SweepExecutor

    matrix = ScenarioMatrix(families=("er", "grid"), sizes=(16, 24, 32),
                            algorithms=("det-n43", "naive-bf"), seeds=(1, 2))
    records = SweepExecutor(cache_dir="results", workers=4).run(matrix.expand())

Subpackages: :mod:`repro.congest` (simulator), :mod:`repro.graphs`
(instances + references), :mod:`repro.primitives` (BFS / broadcast /
convergecast / Bellman-Ford), :mod:`repro.csssp` (consistent hop-limited
SSSP collections), :mod:`repro.blocker` (Section 3), :mod:`repro.pipeline`
(Section 4 + Step 7), :mod:`repro.apsp` (end-to-end algorithms),
:mod:`repro.experiments` (scenario-sweep subsystem),
:mod:`repro.orchestrator` (resumable sharded sweep orchestration),
:mod:`repro.analysis` (exponent fits + Table 1), :mod:`repro.serving`
(memory-mapped distance-oracle artifacts + the async query server).
"""

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "apsp",
    "blocker",
    "congest",
    "csssp",
    "experiments",
    "graphs",
    "orchestrator",
    "pipeline",
    "primitives",
    "serving",
]
