"""Property tests: scheduling and resume invariants on random DAGs.

Hypothesis drives random stage graphs and random per-stage outcome
schedules through the *real* orchestrator loop
(:func:`repro.orchestrator.run.drive`) with a fake executor, pinning the
contracts the sweep orchestration relies on:

* a stage never starts before every dependency is terminal-completed;
* every unblockable stage (all ancestors succeed or complete partial)
  eventually runs, and stages with a failed ancestor never do — they
  are marked failed by propagation instead of hanging;
* resuming from the journal never re-executes a ``completed_success``
  stage, at any crash point.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orchestrator.dag import (
    COMPLETED,
    COMPLETED_PARTIAL,
    COMPLETED_SUCCESS,
    FAILED,
    NOT_STARTED,
    TERMINAL,
    Stage,
    StageGraph,
)
from repro.orchestrator.run import drive
from repro.orchestrator.state import Journal, replay

OUTCOMES = (COMPLETED_SUCCESS, COMPLETED_PARTIAL, FAILED)


@st.composite
def dag_and_schedule(draw) -> Tuple[List[Stage], Dict[str, str]]:
    """A random acyclic graph plus one terminal outcome per stage.

    Dependencies only point at earlier stages, so the graph is acyclic
    by construction while still covering diamonds, chains, and fan-outs.
    """
    n = draw(st.integers(min_value=1, max_value=8))
    stages = []
    for i in range(n):
        dep_ids = draw(st.sets(st.integers(0, i - 1), max_size=3)) if i else set()
        stages.append(Stage(f"s{i}", deps=tuple(f"s{j}" for j in sorted(dep_ids))))
    schedule = {s.name: draw(st.sampled_from(OUTCOMES)) for s in stages}
    return stages, schedule


def unblockable(stages: List[Stage], schedule: Dict[str, str]) -> set:
    """Stage names whose every ancestor's scheduled outcome completes."""
    deps = {s.name: s.deps for s in stages}
    result: set = set()
    for stage in stages:  # ancestors precede dependents in list order
        if all(d in result for d in deps[stage.name]):
            if schedule[stage.name] in COMPLETED:
                result.add(stage.name)
    # ``result`` is "runs and completes"; a stage is *unblockable* when
    # all its deps complete, whatever its own outcome.
    return {s.name for s in stages
            if all(d in result for d in deps[s.name])}


@given(dag_and_schedule())
@settings(max_examples=60, deadline=None)
def test_deps_terminal_before_start_and_unblockable_stages_run(case):
    stages, schedule = case
    graph = StageGraph(stages)
    ran: List[str] = []

    def execute(stage):
        # The loop invariant: at execution time every dependency is
        # terminal, and completed (a failed dep must have failed this
        # stage by propagation instead of running it).
        for dep in stage.deps:
            assert graph[dep].status in TERMINAL
            assert graph[dep].status in COMPLETED
        ran.append(stage.name)
        return schedule[stage.name], f"scheduled {schedule[stage.name]}", []

    drive(graph, execute)

    should_run = unblockable(stages, schedule)
    assert set(ran) == should_run
    assert len(ran) == len(set(ran))  # nothing executes twice
    for stage in graph.stages:
        if stage.name in should_run:
            assert stage.status == schedule[stage.name]
        else:
            # never ran; propagation marked it failed, naming a dep
            assert stage.status == FAILED
            assert "dependency" in stage.detail
    assert graph.done()


@given(case=dag_and_schedule(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_resume_never_reexecutes_completed_stages(case, data):
    stages, schedule = case
    with tempfile.TemporaryDirectory() as tmp:
        journal = Journal(f"{tmp}/journal.jsonl")
        journal.open_run("fingerprint")
        executions: Dict[str, int] = {}

        crash_after = data.draw(
            st.integers(0, len(stages)), label="crash_after")

        class Crash(KeyboardInterrupt):
            pass

        def execute(stage):
            executions[stage.name] = executions.get(stage.name, 0) + 1
            if sum(executions.values()) > crash_after:
                raise Crash()  # SIGKILL stand-in: nothing gets journaled
            return schedule[stage.name], "", []

        graph = StageGraph([Stage(s.name, deps=s.deps) for s in stages])
        try:
            drive(graph, execute, journal=journal)
            crashed = False
        except Crash:
            crashed = True

        completed_before = {
            s.name for s in graph.stages if s.status == COMPLETED_SUCCESS
        }

        # --- the resumed process: fresh graph, replay, drive again ---
        graph2 = StageGraph([Stage(s.name, deps=s.deps) for s in stages])
        interrupted = replay(journal, graph2)
        if crashed:
            # the killed stage was journaled as running, then reset
            assert len(interrupted) == 1
            assert graph2[interrupted[0]].status == NOT_STARTED
        rerun: List[str] = []

        def execute_resumed(stage):
            rerun.append(stage.name)
            executions[stage.name] = executions.get(stage.name, 0) + 1
            return schedule[stage.name], "", []

        drive(graph2, execute_resumed, journal=journal)

        # completed_success stages are never re-executed on resume
        assert not (set(rerun) & completed_before)
        for name, count in executions.items():
            limit = 2 if crashed else 1  # only the killed stage re-runs
            assert count <= limit
        # and the resumed run still reaches the same final states
        should_run = unblockable(stages, schedule)
        for stage in graph2.stages:
            if stage.name in should_run:
                assert stage.status == schedule[stage.name]
            else:
                assert stage.status == FAILED
        assert graph2.done()
