"""Command-line interface: ``python -m repro <command> ...``.

Five subcommands mirror the example scripts so users can reproduce any
result without writing code:

* ``apsp`` — run one APSP algorithm on a generated instance, verify it,
  print the per-step round ledger.
* ``sweep`` — expand a scenario matrix (family x size x weights x
  algorithm x seed) and run it through the parallel sweep executor with
  JSON result caching (:mod:`repro.experiments`).
* ``table1`` — regenerate Table 1 (measured) on a size sweep.
* ``blocker`` — run the four blocker constructions on one instance.
* ``step6`` — standalone reversed q-sink comparison (pipelined vs
  broadcast).

The graph-family / algorithm registries live in
:mod:`repro.experiments.registry`; this module is a thin argparse layer
over them.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import fit_exponent, render_table, sweep_table
from repro.analysis.tables import TABLE1_ROWS, table1_measured
from repro.congest import CongestNetwork
from repro.csssp import build_csssp
from repro.experiments import (
    ALGORITHMS,
    GRAPH_FAMILIES,
    SWEEP_PRESETS,
    WEIGHT_MODELS,
    ScenarioMatrix,
    SweepExecutor,
    make_graph,
)
from repro.experiments.spec import THREE_PHASE


def cmd_apsp(args) -> int:
    graph = make_graph(args.family, args.n, args.seed)
    net = CongestNetwork(graph)
    algo = ALGORITHMS[args.algorithm]
    result = algo(net, graph)
    if not args.no_verify:
        result.verify(graph)
        if result.pred is not None:
            result.verify_paths(graph)
        print("output verified exact (distances and routing)")
    print(f"{result.algorithm} on {graph}: {result.rounds} rounds, "
          f"meta={result.meta}")
    print(result.log.render())
    return 0


def cmd_sweep(args) -> int:
    # Axis resolution: explicit flags win, then the --preset values, then
    # the built-in defaults.
    preset = {}
    if args.preset:
        if args.preset not in SWEEP_PRESETS:
            raise SystemExit(
                f"repro sweep: unknown preset {args.preset!r}; available "
                f"presets: {', '.join(sorted(SWEEP_PRESETS))}"
            )
        preset = dict(SWEEP_PRESETS[args.preset])

    def axis(name, default):
        given = getattr(args, name)
        if given is not None:
            return given
        return preset.get(name, default)

    families = axis("families", ["er"])
    sizes = axis("sizes", [16, 24])
    algorithms = axis("algorithms", ["det-n43"])
    driver_flags = [flag for flag, value in (
        ("--blockers", args.blockers),
        ("--deliveries", args.deliveries),
        ("--h-exponents", args.h_exponents),
    ) if value]
    if driver_flags and THREE_PHASE not in algorithms:
        raise SystemExit(
            f"repro sweep: {' / '.join(driver_flags)} only apply to the "
            f"'{THREE_PHASE}' algorithm; add it to --algorithms"
        )
    matrix = ScenarioMatrix(
        families=families,
        sizes=sizes,
        algorithms=algorithms,
        seeds=axis("seeds", [1]),
        weights=axis("weights", ["uniform"]),
        h_exponents=args.h_exponents or (None,),
        blockers=args.blockers or (None,),
        deliveries=args.deliveries or (None,),
        strict=not args.fast and bool(preset.get("strict", True)),
        compress=args.compressed or bool(preset.get("compress", False)),
    )
    try:
        specs = matrix.expand()
    except ValueError as exc:
        raise SystemExit(f"repro sweep: {exc}") from exc
    executor = SweepExecutor(
        cache_dir=args.cache_dir,
        workers=args.workers,
        verify=not args.no_verify,
        force=args.force,
    )
    print(f"sweep: {len(specs)} scenarios, {executor.workers} worker(s), "
          f"cache={args.cache_dir or 'off'}")

    def progress(spec, was_cached):
        print(f"  [{'cache' if was_cached else 'run'}] {spec.key} {spec.label}")

    records = executor.run(specs, progress=progress)
    print(f"done: {executor.executed} executed, {executor.cached} from cache")
    print(sweep_table(records, title=f"scenario sweep ({len(records)} runs)"))
    return 0


def cmd_table1(args) -> int:
    ns = args.sizes or [16, 24, 32, 48]
    graphs = [make_graph(args.family, n, args.seed) for n in ns]
    data = table1_measured(graphs, verify=not args.no_verify)
    rows = []
    for spec in TABLE1_ROWS:
        if spec.run is None:
            rows.append([spec.key, spec.claimed, "(quoted bound)", ""])
            continue
        series = data[spec.key]
        rounds = [r for (_n, r, _res) in series]
        alpha = fit_exponent([g.n for g in graphs], rounds).alpha
        rows.append([spec.key, spec.claimed,
                     " ".join(map(str, rounds)), f"{alpha:.2f}"])
    print(render_table(
        ["algorithm", "claimed", f"rounds at n={[g.n for g in graphs]}",
         "fitted alpha"],
        rows,
        title=f"Table 1 measured on {args.family}",
    ))
    return 0


def cmd_blocker(args) -> int:
    from repro.blocker import (
        deterministic_blocker_set,
        greedy_blocker_set,
        is_blocker_set,
        randomized_blocker_set,
        sampling_blocker_set,
    )

    graph = make_graph(args.family, args.n, args.seed)
    net = CongestNetwork(graph)
    h = args.h or max(1, round(graph.n ** (1 / 3)))
    coll, stats = build_csssp(net, graph, range(graph.n), h)
    print(f"{graph}: h={h}, {coll.path_count()} paths "
          f"(CSSSP in {stats.rounds} rounds)")
    rows = []
    for name, fn in [
        ("Algorithm 2' (det)", deterministic_blocker_set),
        ("Algorithm 2 (rand)", randomized_blocker_set),
        ("greedy [2]", greedy_blocker_set),
        ("sampling", sampling_blocker_set),
    ]:
        res = fn(net, coll)
        assert is_blocker_set(coll, res.blockers)
        rows.append([name, res.q, res.stats.rounds, len(res.picks)])
    print(render_table(
        ["construction", "|Q|", "rounds", "selection steps"], rows
    ))
    return 0


def cmd_step6(args) -> int:
    from repro.blocker import deterministic_blocker_set
    from repro.pipeline import broadcast_delivery, reversed_qsink
    from repro.pipeline.values import reference_values

    graph = make_graph(args.family, args.n, args.seed)
    net = CongestNetwork(graph)
    h = max(1, round(graph.n ** (1 / 3)))
    coll, _ = build_csssp(net, graph, range(graph.n), h)
    q_nodes = sorted(deterministic_blocker_set(net, coll).blockers)
    values = reference_values(graph, q_nodes)
    qs = reversed_qsink(net, graph, q_nodes, values)
    _, bstats = broadcast_delivery(net, q_nodes, values)
    print(f"{graph}: |Q|={len(q_nodes)} |Q'|={len(qs.q_prime)} "
          f"|B|={len(qs.bottleneck.bottlenecks)}")
    print(f"pipelined Step 6: {qs.stats.rounds} rounds")
    print(f"broadcast Step 6: {bstats.rounds} rounds")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Faster Deterministic APSP in the "
        "Congest Model' (Agarwal & Ramachandran, SPAA 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("apsp", help="run one APSP algorithm")
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="det-n43")
    p.add_argument("--family", choices=GRAPH_FAMILIES, default="er")
    p.add_argument("--n", type=int, default=27)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=cmd_apsp)

    p = sub.add_parser(
        "sweep",
        help="run a scenario matrix in parallel with result caching",
    )
    p.add_argument("--preset",
                   help="named scenario matrix (e.g. 'large-n' for the "
                        "n in {128, 256} fast-path workloads); explicit "
                        "axis flags override preset values; an unknown "
                        "name lists the available presets")
    p.add_argument("--families", nargs="+", choices=GRAPH_FAMILIES)
    p.add_argument("--sizes", type=int, nargs="+")
    p.add_argument("--algorithms", nargs="+",
                   choices=sorted(ALGORITHMS) + [THREE_PHASE])
    p.add_argument("--seeds", type=int, nargs="+")
    p.add_argument("--weights", nargs="+", choices=sorted(WEIGHT_MODELS))
    p.add_argument("--h-exponents", type=float, nargs="*",
                   help="driver hop exponents (3phase scenarios only)")
    p.add_argument("--blockers", nargs="*",
                   help="blocker constructions (3phase scenarios only)")
    p.add_argument("--deliveries", nargs="*",
                   help="Step-6 deliveries (3phase scenarios only)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = in-process serial)")
    p.add_argument("--cache-dir",
                   help="JSON result cache directory (default: off)")
    p.add_argument("--force", action="store_true",
                   help="re-run scenarios even if cached")
    p.add_argument("--fast", action="store_true",
                   help="engine fast path: skip strict CONGEST model checks")
    p.add_argument("--compressed", action="store_true",
                   help="round-compressed fixed-schedule phases "
                        "(bit-identical records, faster simulation)")
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("table1", help="regenerate Table 1 (measured)")
    p.add_argument("--family", choices=GRAPH_FAMILIES, default="er")
    p.add_argument("--sizes", type=int, nargs="*")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("blocker", help="compare blocker constructions")
    p.add_argument("--family", choices=GRAPH_FAMILIES, default="er")
    p.add_argument("--n", type=int, default=24)
    p.add_argument("--h", type=int)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_blocker)

    p = sub.add_parser("step6", help="pipelined vs broadcast delivery")
    p.add_argument("--family", choices=GRAPH_FAMILIES, default="er")
    p.add_argument("--n", type=int, default=32)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_step6)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
