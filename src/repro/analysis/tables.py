"""Table 1, regenerated as measured data.

The paper's Table 1 compares round complexities of exact weighted APSP
algorithms.  We measure the families we implement end-to-end on identical
inputs and report rounds, the fitted growth exponent over the sweep, and
the rounds normalized by each algorithm's claimed bound.  Rows of Table 1
whose algorithms are out of implementation scope (Huang et al.'s
``O~(n^{5/4})`` scaling algorithm, Elkin's ``O~(n^{5/3})`` undirected
algorithm, Bernstein-Nanongkai's ``O~(n)``) are carried as *quoted
bounds*: they are different algorithmic frameworks (scaling /
low-diameter decompositions), not ``(h, blocker, delivery)`` points of
the shared three-phase driver, so reproducing them is out of scope.
Claimed bounds for the measured rows are single-sourced from
:data:`repro.experiments.registry.CLAIMED_BOUNDS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.congest.network import CongestNetwork
from repro.experiments.registry import CLAIMED_BOUNDS
from repro.graphs.spec import Graph
from repro.apsp.baseline_n32 import baseline_n32_apsp
from repro.apsp.deterministic import deterministic_apsp
from repro.apsp.naive import five_thirds_apsp, naive_bf_apsp
from repro.apsp.randomized import randomized_apsp
from repro.apsp.result import APSPResult


@dataclass
class Table1Row:
    """One measured contender of Table 1."""

    key: str
    reference: str
    weights: str
    kind: str  # Randomized / Deterministic
    claimed: str  # the paper-quoted bound
    claimed_alpha: float  # exponent of the claimed bound (for normalization)
    run: Optional[Callable[[CongestNetwork, Graph], APSPResult]]


def _measured(key: str, reference: str, weights: str, kind: str,
              run: Callable) -> Table1Row:
    """A measured row; bound string and exponent come from the registry
    (:data:`~repro.experiments.registry.CLAIMED_BOUNDS`), so Table 1 and
    the sweep report can never disagree on a claimed bound."""
    bound = CLAIMED_BOUNDS[key]
    return Table1Row(key, reference, weights, kind, bound.bound,
                     bound.alpha, run)


#: Measured rows (implemented end-to-end) + quoted rows (run=None).
TABLE1_ROWS: List[Table1Row] = [
    _measured("naive-bf", "folklore", "Arbitrary", "Deterministic",
              naive_bf_apsp),
    _measured("det-n53", "Step-6 strawman (Sec. 2)", "Arbitrary",
              "Deterministic", five_thirds_apsp),
    _measured("det-n32", "Agarwal et al. [2]", "Arbitrary", "Deterministic",
              baseline_n32_apsp),
    _measured("rand-n43", "Agarwal-Ramachandran [1]", "Arbitrary",
              "Randomized", randomized_apsp),
    _measured("det-n43", "THIS PAPER", "Arbitrary", "Deterministic",
              deterministic_apsp),
    Table1Row("huang-n54", "Huang et al. [13]", "Integer", "Randomized",
              "O~(n^{5/4})", 1.25, None),
    Table1Row("elkin-n53", "Elkin [8]", "Arbitrary (undirected)",
              "Randomized", "O~(n^{5/3})", 5.0 / 3.0, None),
    Table1Row("bn-n", "Bernstein-Nanongkai [5]", "Arbitrary", "Randomized",
              "O~(n)", 1.0, None),
]


def sweep_rows(records: Sequence[dict]) -> List[List[object]]:
    """Aggregate sweep records into Table-1-style report rows.

    Records (see :mod:`repro.experiments.runner`) are grouped by
    ``(algorithm, family, weight model)``; within a group, rounds are
    averaged over seeds at each size and the growth exponent ``alpha`` is
    fitted over the size series (needs >= 2 distinct sizes, else blank).
    """
    from repro.analysis.fitting import fit_exponent

    groups: Dict[Tuple[str, str, str], Dict[int, List[dict]]] = {}
    for rec in records:
        spec = rec["spec"]
        key = (rec["algorithm"], spec["family"], spec["weights"])
        groups.setdefault(key, {}).setdefault(spec["n"], []).append(rec)

    rows: List[List[object]] = []
    for (algo, family, weights), by_n in sorted(groups.items()):
        ns = sorted(by_n)
        # Fit against the graphs' real sizes: several families (grid,
        # star, layered) only approximate the requested n.
        actual_ns = [
            sum(r.get("actual_n", n) for r in by_n[n]) / len(by_n[n])
            for n in ns
        ]
        mean_rounds = [
            sum(r["rounds"] for r in by_n[n]) / len(by_n[n]) for n in ns
        ]
        mean_msgs = [
            sum(r["messages"] for r in by_n[n]) / len(by_n[n]) for n in ns
        ]
        runs = sum(len(v) for v in by_n.values())
        alpha = (
            f"{fit_exponent(actual_ns, mean_rounds).alpha:.2f}"
            if len(set(actual_ns)) > 1 else ""
        )
        rows.append([
            algo, family, weights, runs,
            " ".join(str(n) for n in ns),
            " ".join(f"{r:.0f}" for r in mean_rounds),
            alpha,
            f"{max(mean_msgs):.0f}",
        ])
    return rows


SWEEP_HEADER = [
    "algorithm", "family", "weights", "runs", "sizes",
    "mean rounds per size", "fitted alpha", "peak mean messages",
]


def sweep_table(records: Sequence[dict], title: str = "scenario sweep") -> str:
    """Render aggregated sweep records with the standard report style."""
    from repro.analysis.report import render_table

    return render_table(SWEEP_HEADER, sweep_rows(records), title=title)


def table1_measured(
    graphs: Sequence[Graph],
    rows: Optional[Sequence[Table1Row]] = None,
    verify: bool = True,
) -> Dict[str, List[Tuple[int, int, APSPResult]]]:
    """Run every implemented contender on every graph.

    Returns ``{row key: [(n, rounds, result), ...]}`` in graph order.
    ``verify`` checks each output against the centralized reference.
    """
    rows = [r for r in (rows or TABLE1_ROWS) if r.run is not None]
    out: Dict[str, List[Tuple[int, int, APSPResult]]] = {r.key: [] for r in rows}
    for graph in graphs:
        net = CongestNetwork(graph)
        for row in rows:
            result = row.run(net, graph)
            if verify:
                result.verify(graph)
            out[row.key].append((graph.n, result.rounds, result))
    return out


__all__ = ["TABLE1_ROWS", "Table1Row", "table1_measured"]
