"""Shared benchmark helpers.

Every bench measures *CONGEST rounds* (the paper's metric); wall time is a
side effect pytest-benchmark records.  Each bench prints its table/series
(the same rows the paper's artifact would show) and also writes it to
``benchmarks/results/<name>.txt`` so the report survives output capture.
Machine-readable bench records go through :func:`emit_json`, which writes
with the same atomic sorted-keys convention as the committed
``benchmarks/results/REPORT.json`` so diffs stay stable.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Iterable

from repro.analysis.sweep_report import write_json
from repro.analysis.trajectory import BenchRecord, records_payload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a bench report and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    sys.stderr.write(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable bench record under benchmarks/results/.

    ``name`` is a bare file stem, like :func:`emit` takes — the
    ``.json`` suffix is appended here, the one place that enforces it
    (a trailing ``.json`` on the stem is tolerated and normalized).
    Delegates to :func:`repro.analysis.sweep_report.write_json` — the
    single home of the atomic sorted-keys convention ``REPORT.json``
    uses — so tracked trajectory files produce minimal diffs.
    """
    stem = name[: -len(".json")] if name.endswith(".json") else name
    if not stem or "/" in stem or "\\" in stem:
        raise ValueError(
            f"emit_json takes a bare file stem under benchmarks/results/, "
            f"got {name!r}"
        )
    return write_json(RESULTS_DIR / f"{stem}.json", payload)


def emit_records(bench: str, records: Iterable[BenchRecord]) -> pathlib.Path:
    """Persist a bench's schema'd trajectory records as ``BENCH_<bench>.json``.

    Every bench funnels its machine-readable output through this: a
    versioned :class:`~repro.analysis.trajectory.BenchRecord` payload
    (git sha + machine fingerprint stamped) that ``repro perf
    --records``/``--update`` can gate or promote into the committed
    ``HISTORY.jsonl`` trajectory.
    """
    return emit_json(f"BENCH_{bench}", records_payload(records))


def once(benchmark, fn):
    """Run an expensive simulation exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
