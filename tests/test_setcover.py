"""The centralized Berger-Rompel-Shor set cover and its equivalence to the
distributed blocker construction."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.congest import CongestNetwork
from repro.blocker import deterministic_blocker_set, greedy_blocker_set
from repro.blocker.randomized import BlockerParams
from repro.blocker.setcover import (
    CoverResult,
    Hypergraph,
    brs_cover,
    collection_hypergraph,
    greedy_cover,
)

from conftest import collection_of, graph_of


def small_hypergraph():
    return Hypergraph([
        {0, 1, 2},
        {2, 3},
        {3, 4, 5},
        {0, 5},
        {1, 4},
    ])


def test_hypergraph_bookkeeping():
    hg = small_hypergraph()
    assert hg.live_count() == 5
    assert hg.degree(2) == 2 and hg.degree(0) == 2
    removed = hg.cover(2)
    assert removed == 2
    assert hg.live_count() == 3
    assert hg.degree(2) == 0
    hg.reset()
    assert hg.live_count() == 5


def test_hypergraph_rejects_empty_edge():
    with pytest.raises(ValueError):
        Hypergraph([{1, 2}, set()])


def test_greedy_cover_valid_and_minimal_on_small_case():
    hg = small_hypergraph()
    result = greedy_cover(hg)
    assert hg.is_covered_by(result.cover)
    # This instance has a 2-cover ({2, 4} e.g.); greedy finds size <= 3.
    assert result.size <= 3


@pytest.mark.parametrize("force", [False, True])
@pytest.mark.parametrize("derandomize", [False, True])
def test_brs_cover_always_covers(force, derandomize):
    hg = small_hypergraph()
    result = brs_cover(
        hg, force_selection=force, derandomize=derandomize, seed=7
    )
    assert hg.is_covered_by(result.cover)
    assert result.selection_steps >= 1


def test_brs_rejects_bad_constants():
    with pytest.raises(ValueError):
        brs_cover(small_hypergraph(), eps=0.5)


def test_collection_hypergraph_shape():
    coll = collection_of("er-sparse", 3)
    hg = collection_hypergraph(coll)
    assert len(hg.edges) == coll.path_count()
    assert all(len(e) == 3 for e in hg.edges)  # h vertices per edge


@pytest.mark.parametrize("kind", ["er-sparse", "er-dense", "grid", "star"])
def test_distributed_greedy_equals_centralized_greedy(kind):
    """The distributed greedy blocker and greedy set cover on the derived
    hypergraph are the same algorithm: identical picks, identical order."""
    coll = collection_of(kind, 3)
    g = graph_of(kind)
    net = CongestNetwork(g)
    distributed = greedy_blocker_set(net, coll)
    central = greedy_cover(collection_hypergraph(coll))
    assert distributed.blockers == central.cover


@pytest.mark.parametrize("kind", ["er-sparse", "er-dense"])
def test_distributed_alg2prime_equals_centralized_brs(kind):
    """Algorithm 2' is the distributed realization of [4]: same stage /
    phase structure, same sample space, same picks."""
    coll = collection_of(kind, 3)
    g = graph_of(kind)
    net = CongestNetwork(g)
    distributed = deterministic_blocker_set(net, coll)
    central = brs_cover(collection_hypergraph(coll))
    assert distributed.blockers == central.cover
    assert [k for (k, _a) in central.picks] == [
        p.kind for p in distributed.picks
    ]


def test_forced_selection_matches_too():
    coll = collection_of("er-dense", 2)
    g = graph_of("er-dense")
    net = CongestNetwork(g)
    distributed = deterministic_blocker_set(
        net, coll, BlockerParams(force_selection=True)
    )
    central = brs_cover(
        collection_hypergraph(coll), force_selection=True
    )
    assert distributed.blockers == central.cover


def random_hypergraph(n, m, k, seed):
    rng = random.Random(seed)
    edges = []
    for _ in range(m):
        size = rng.randint(1, k)
        edges.append(set(rng.sample(range(n), min(size, n))))
    return Hypergraph(edges)


@given(
    n=st.integers(4, 30),
    m=st.integers(1, 40),
    k=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_brs_cover_property(n, m, k, seed):
    hg = random_hypergraph(n, m, k, seed)
    result = brs_cover(hg, seed=seed)
    assert hg.is_covered_by(result.cover)
    # Lemma 3.10 shape: within a constant factor of greedy.
    ref = greedy_cover(hg)
    assert result.size <= max(3 * ref.size, ref.size + 3)


@given(
    n=st.integers(4, 25),
    m=st.integers(1, 30),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=20, deadline=None)
def test_greedy_cover_property(n, m, seed):
    hg = random_hypergraph(n, m, 4, seed)
    result = greedy_cover(hg)
    assert hg.is_covered_by(result.cover)
    # Each pick covers at least one edge.
    assert result.size <= m
