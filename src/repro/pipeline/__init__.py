"""Step 6 — the reversed q-sink shortest-path problem (Section 4) + Step 7.

Every source ``x`` holds a distance value ``delta(x, c)`` for every blocker
node ``c``; Step 6 must deliver each value *to* ``c``.  The trivial
solution broadcasts all ``n \\cdot |Q| = O~(n^{5/3})`` values
(:mod:`~repro.pipeline.broadcast_delivery`); the paper's contribution is an
``O~(n^{4/3})`` deterministic method split by hop distance:

* :mod:`~repro.pipeline.long_range` — Algorithm 8 (``hops > n^{2/3}``):
  a second-level blocker set ``Q'`` on the ``n^{2/3}``-in-CSSSP relays the
  values through full SSSPs and an ``n \\cdot |Q'|``-value broadcast.
* :mod:`~repro.pipeline.bottleneck` — Algorithms 13/14: find the
  ``O~(n^{1/3})`` bottleneck nodes whose removal caps every node's
  remaining message load at ``n \\sqrt{|Q|}``.
* :mod:`~repro.pipeline.short_range` — Algorithm 9 (``hops <= n^{2/3}``):
  bottleneck relays plus the frame/stage round-robin pipeline that pushes
  the surviving values up the pruned in-trees.
* :mod:`~repro.pipeline.reversed_qsink` — the Step 6 orchestrator
  combining both cases (every blocker node takes the minimum over the
  candidates each case produced).
* :mod:`~repro.pipeline.extension` — Step 7: extended ``h``-hop
  Bellman-Ford from the delivered values (Section 5).
"""

from repro.pipeline.bottleneck import BottleneckResult, compute_bottleneck
from repro.pipeline.broadcast_delivery import broadcast_delivery
from repro.pipeline.extension import extend_h_hop
from repro.pipeline.long_range import long_range_delivery
from repro.pipeline.reversed_qsink import QSinkResult, reversed_qsink
from repro.pipeline.short_range import short_range_delivery
from repro.pipeline.values import add_triples, is_finite, reference_values

__all__ = [
    "BottleneckResult",
    "QSinkResult",
    "broadcast_delivery",
    "compute_bottleneck",
    "extend_h_hop",
    "long_range_delivery",
    "reversed_qsink",
    "add_triples",
    "is_finite",
    "reference_values",
    "short_range_delivery",
]
