"""T1 — Table 1 regenerated as measured data.

For each implemented APSP family: total CONGEST rounds on identical inputs
across a sweep of ``n``, the fitted growth exponent ``alpha`` (log-log
least squares), and rounds normalized by the claimed bound ``n^alpha_c``.
The paper's shape prediction: exponents order as

    naive-bf (~n * D) vs det-n53 > det-n32 > {rand-n43, det-n43}

with the two ``n^{4/3}`` families flattest after normalization.  Quoted
rows of Table 1 we do not implement are appended as bounds-only lines.

All runs go through the scenario-sweep subsystem
(:mod:`repro.experiments`): the benches declare a matrix and read the
result records instead of hand-rolling the loops.
"""

from __future__ import annotations

from repro.analysis import TABLE1_ROWS, fit_exponent, normalized_series, render_table
from repro.experiments import ScenarioMatrix, SweepExecutor

from _common import emit, once

SWEEP_NS = (16, 24, 32, 48, 64, 96)
ALGOS = ("naive-bf", "det-n53", "det-n32", "rand-n43", "det-n43")


def run_matrix(matrix: ScenarioMatrix):
    """Execute a matrix (no cache: benches measure, they don't memoize)."""
    records = SweepExecutor(cache_dir=None, workers=1).run(matrix.expand())
    by_algo = {}
    for rec in records:
        by_algo.setdefault(rec["spec"]["algorithm"], []).append(rec)
    return by_algo


def test_table1_er_sweep(benchmark):
    matrix = ScenarioMatrix(families=("er",), sizes=SWEEP_NS,
                            algorithms=ALGOS, seeds=(7,))

    data = once(benchmark, lambda: run_matrix(matrix))
    rows = []
    for spec in TABLE1_ROWS:
        if spec.run is None:
            rows.append(
                [spec.key, spec.reference, spec.kind, spec.claimed,
                 "(bound quoted; out of implementation scope)", "", ""]
            )
            continue
        series = data[spec.key]
        ns = [rec["spec"]["n"] for rec in series]
        rounds = [rec["rounds"] for rec in series]
        fit = fit_exponent(ns, rounds)
        norm = normalized_series(ns, rounds, spec.claimed_alpha)
        rows.append(
            [spec.key, spec.reference, spec.kind, spec.claimed,
             " ".join(str(r) for r in rounds),
             f"{fit.alpha:.2f}",
             f"{norm[0]:.1f}->{norm[-1]:.1f}"]
        )
        benchmark.extra_info[spec.key] = {"ns": ns, "rounds": rounds,
                                          "alpha": fit.alpha}
    table = render_table(
        ["algorithm", "reference", "kind", "claimed bound",
         f"rounds at n={list(SWEEP_NS)}", "fitted alpha",
         "rounds/n^alpha_claimed"],
        rows,
        title="Table 1 (measured, Erdos-Renyi sweep; all outputs verified exact)",
    )
    emit("table1_er", table)


def test_table1_message_complexity(benchmark):
    """Companion view: total messages and max per-node congestion.

    Round complexity is the paper's metric, but message counts separate
    algorithms with similar round budgets (the pipelined Step 6 moves far
    fewer messages than broadcast at equal rounds).
    """
    matrix = ScenarioMatrix(families=("er",), sizes=(24, 48),
                            algorithms=ALGOS, seeds=(7,))

    data = once(benchmark, lambda: run_matrix(matrix))
    rows = []
    for key, series in data.items():
        row = [key]
        for rec in series:
            row.append(rec["messages"])
            row.append(rec["max_node_congestion"])
        rows.append(row)
    table = render_table(
        ["algorithm", "messages n=24", "max congestion n=24",
         "messages n=48", "max congestion n=48"],
        rows,
        title="Table 1 companion: message complexity (verified exact)",
    )
    emit("table1_messages", table)


def test_table1_grid_spotcheck(benchmark):
    """Second topology: the ordering must not be an ER artifact."""
    matrix = ScenarioMatrix(families=("grid",), sizes=(24, 48),
                            algorithms=ALGOS, seeds=(1,))

    data = once(benchmark, lambda: run_matrix(matrix))
    rows = []
    for key, series in data.items():
        rows.append([key] + [rec["rounds"] for rec in series])
    table = render_table(
        ["algorithm", "rounds n~24", "rounds n~48"],
        rows,
        title="Table 1 spot check on 2-D grids (verified exact)",
    )
    emit("table1_grid", table)
