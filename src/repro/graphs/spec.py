"""Weighted graph data structure for the CONGEST algorithms.

Node ids are ``0 .. n-1`` (the paper allows ids in ``1 .. poly(n)``; a dense
relabeling loses nothing).  Edge weights are arbitrary non-negative reals;
zero weights are allowed (all algorithms in the paper handle them).

Tie-breaking keys
-----------------
The CSSSP construction of [1] (Appendix A.2) needs shortest paths to be
*unique* so that the collection of trees is consistent (the u->v path is the
same in every tree that contains it).  We realize uniqueness with a
deterministic lexicographic cost per edge::

    cost(e) = (w(e), 1, tb(e))

summed component-wise along a path and compared lexicographically, where
``tb(e)`` is a 48-bit deterministic pseudo-random key derived from the edge
endpoints and the graph seed.  The primary component keeps true weights
exact; the ``1`` (hop count) prefers fewer hops among equal-weight paths —
needed so that a vertex whose true distance is achievable within ``h`` hops
lands within depth ``h`` of the truncated CSSSP tree; the third component
makes the minimum generically unique.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

#: lexicographic path cost: (total weight, hop count, tie-break sum)
Cost = Tuple[float, int, int]

#: the identity for lexicographic path costs
ZERO_COST: Cost = (0.0, 0, 0)

#: "unreachable" sentinel, larger than every finite cost
INF_COST: Cost = (math.inf, 0, 0)

_MASK48 = (1 << 48) - 1

#: weight quantum: weights snap to multiples of 2^-16 (see Graph docstring)
WEIGHT_QUANTUM = 1.0 / (1 << 16)


def quantize_weight(w: float) -> float:
    """Snap ``w`` to the dyadic grid ``k / 2^16``.

    With weights on this grid, every path sum the algorithms form (up to
    millions of terms at the magnitudes used here) is *exactly*
    representable in double precision, so addition is associative: two
    computations of the same distance through different groupings agree
    bit for bit.  That exactness is what lets equal-weight ties be decided
    by the true hop counts and tie-break fingerprints everywhere
    (Bellman-Ford relaxation, the Step-5 closure, Step-7 routing) instead
    of by floating-point noise.
    """
    return round(w * (1 << 16)) * WEIGHT_QUANTUM


def _mix(a: int, b: int, seed: int) -> int:
    """SplitMix64-style deterministic hash of an edge, truncated to 48 bits."""
    z = (a * 0x9E3779B97F4A7C15 + b * 0xBF58476D1CE4E5B9 + seed * 0x94D049BB133111EB) & (
        (1 << 64) - 1
    )
    z ^= z >> 30
    z = (z * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    z ^= z >> 27
    z = (z * 0x94D049BB133111EB) & ((1 << 64) - 1)
    z ^= z >> 31
    return z & _MASK48


def add_cost(c: Cost, w: float, tb: int) -> Cost:
    """Extend path cost ``c`` by one edge of weight ``w`` and key ``tb``."""
    return (c[0] + w, c[1] + 1, c[2] + tb)


class Graph:
    """A simple weighted graph (directed or undirected), no self loops.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of ``(u, v, w)`` with ``w >= 0``.  For undirected graphs
        each pair should appear once; both orientations are materialized.
        Weights are quantized to the dyadic grid ``2^{-16}`` (about 5
        decimal digits) so that distributed and centralized distance sums
        agree exactly regardless of summation order — see
        :func:`quantize_weight`.
    directed:
        Whether the shortest-path instance is directed.  Communication is
        always over the underlying undirected graph (Section 1.1).
    seed:
        Seed for the deterministic tie-breaking keys.
    name:
        Optional label used by benchmark reports.
    """

    __slots__ = ("n", "directed", "name", "seed", "_edges", "_out", "_in", "_und", "_tb")

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int, float]],
        directed: bool = False,
        seed: int = 0,
        name: str = "",
    ) -> None:
        self.n = n
        self.directed = directed
        self.seed = seed
        self.name = name
        edge_list: List[Tuple[int, int, float]] = []
        seen: set = set()
        out: List[List[Tuple[int, float, int]]] = [[] for _ in range(n)]
        inn: List[List[Tuple[int, float, int]]] = [[] for _ in range(n)]
        und: List[set] = [set() for _ in range(n)]
        tb_map: Dict[Tuple[int, int], int] = {}
        for u, v, w in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u},{v}) out of range for n={n}")
            if u == v:
                raise ValueError(f"self loop at {u}")
            if w < 0:
                raise ValueError(f"negative weight {w} on ({u},{v})")
            key = (u, v) if directed else (min(u, v), max(u, v))
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            w = quantize_weight(float(w))
            edge_list.append((u, v, w))
            tb = _mix(key[0] + 1, key[1] + 1, seed) | 1
            tb_map[(u, v)] = tb
            out[u].append((v, w, tb))
            inn[v].append((u, w, tb))
            und[u].add(v)
            und[v].add(u)
            if not directed:
                tb_map[(v, u)] = tb
                out[v].append((u, w, tb))
                inn[u].append((v, w, tb))
        self._edges = edge_list
        self._out = [sorted(a) for a in out]
        self._in = [sorted(a) for a in inn]
        self._und = [tuple(sorted(s)) for s in und]
        self._tb = tb_map

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of stored edges (each undirected edge counted once)."""
        return len(self._edges)

    @property
    def edges(self) -> Sequence[Tuple[int, int, float]]:
        return tuple(self._edges)

    def out_edges(self, v: int) -> Sequence[Tuple[int, float, int]]:
        """Relaxable outgoing edges ``(head, weight, tiebreak)`` of ``v``."""
        return self._out[v]

    def in_edges(self, v: int) -> Sequence[Tuple[int, float, int]]:
        """Relaxable incoming edges ``(tail, weight, tiebreak)`` of ``v``."""
        return self._in[v]

    def und_neighbors(self, v: int) -> Sequence[int]:
        """Communication neighbors (underlying undirected graph)."""
        return self._und[v]

    def tiebreak(self, u: int, v: int) -> int:
        """Tie-break key of directed edge ``(u, v)``."""
        return self._tb[(u, v)]

    # ------------------------------------------------------------------
    def reverse(self) -> "Graph":
        """The graph with every edge reversed, *preserving* tie-break keys.

        Key stability matters: an in-SSSP computed on ``g`` and an out-SSSP
        computed on ``g.reverse()`` must tie-break identically, or the two
        views of the same tree would disagree.
        """
        if not self.directed:
            return self
        g = Graph(
            self.n,
            [(v, u, w) for (u, v, w) in self._edges],
            directed=True,
            seed=self.seed,
            name=self.name + "~rev",
        )
        # Transplant the original keys onto the flipped orientation.
        g._tb = {(v, u): tb for (u, v), tb in self._tb.items()}
        g._out = [
            sorted((u, w, g._tb[(v, u)]) for (u, w, _old) in g._out[v])
            for v in range(self.n)
        ]
        g._in = [
            sorted((u, w, g._tb[(u, v)]) for (u, w, _old) in g._in[v])
            for v in range(self.n)
        ]
        return g

    def is_connected(self) -> bool:
        """Connectivity of the underlying undirected graph.

        CONGEST algorithms for APSP assume a connected communication
        network; generators in this package guarantee it.
        """
        if self.n == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for u in self._und[v]:
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        return len(seen) == self.n

    def und_diameter(self) -> int:
        """Hop diameter of the underlying undirected graph (BFS per node)."""
        from collections import deque

        best = 0
        for s in range(self.n):
            dist = {s: 0}
            dq = deque([s])
            while dq:
                v = dq.popleft()
                for u in self._und[v]:
                    if u not in dist:
                        dist[u] = dist[v] + 1
                        dq.append(u)
            best = max(best, max(dist.values(), default=0))
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "digraph" if self.directed else "graph"
        tag = f" {self.name!r}" if self.name else ""
        return f"Graph({kind}, n={self.n}, m={self.m}{tag})"


__all__ = [
    "Cost",
    "Graph",
    "INF_COST",
    "WEIGHT_QUANTUM",
    "ZERO_COST",
    "add_cost",
    "quantize_weight",
]
