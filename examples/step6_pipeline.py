#!/usr/bin/env python3
"""Section 4 in action: the reversed q-sink problem on an adversarial net.

A hub-and-spoke network (star of paths) is the worst case for Step 6:
every cross-arm distance value must pass through the hub.  This script

1. computes the exact values ``delta(x, c)`` every source owes each sink,
2. runs Algorithm 13 to expose the hub as a *bottleneck node*,
3. relays the hub-crossing values through the bottleneck SSSPs,
4. pushes the rest up the pruned in-trees with the Steps 7-9 round-robin
   pipeline, and
5. compares the total rounds against the broadcast strawman.

Usage::

    python examples/step6_pipeline.py [arms] [arm_len]
"""

from __future__ import annotations

import math
import sys

from repro.congest import CongestNetwork
from repro.graphs import star_of_paths
from repro.graphs.reference import all_pairs_shortest_paths
from repro.pipeline import broadcast_delivery, reversed_qsink


def main() -> None:
    arms = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    arm_len = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    graph = star_of_paths(arms, arm_len, seed=9)
    net = CongestNetwork(graph)
    n = graph.n
    sinks = [arm_len * (a + 1) for a in range(arms)]  # the arm tips
    print(f"{graph}: hub=0, sinks at arm tips {sinks}")

    from repro.pipeline.values import reference_values

    ref = all_pairs_shortest_paths(graph)
    values = reference_values(graph, sinks)
    total_values = sum(len(v) for v in values)
    print(f"{total_values} distance values to deliver to {len(sinks)} sinks\n")

    result = reversed_qsink(
        net, graph, sinks, values, bottleneck_threshold=float(n)
    )
    print(f"bottleneck nodes extracted (Algorithm 13): "
          f"{result.bottleneck.bottlenecks}  "
          f"(threshold {result.bottleneck.threshold:.0f}, residual max "
          f"{result.bottleneck.max_residual:.0f})")
    print(f"second-level blockers Q' (Algorithm 8): {result.q_prime}")
    print(f"round-robin pipeline: {result.trace.messages} messages in "
          f"{result.trace.rounds} rounds "
          f"(max per-node load {result.trace.max_forwarded})")
    print(f"Step 6 total: {result.stats.rounds} rounds")

    missing = 0
    for c in sinks:
        for x in range(n):
            if x != c and math.isfinite(ref[x, c]):
                got = result.delivered[c].get(x)
                if got is None or abs(got[0] - ref[x, c]) > 1e-9:
                    missing += 1
    print(f"delivery check: {'all values exact' if missing == 0 else f'{missing} WRONG'}")

    _, bstats = broadcast_delivery(net, sinks, values)
    print(f"\nbroadcast strawman: {bstats.rounds} rounds "
          f"(pipelined/broadcast = "
          f"{result.stats.rounds / bstats.rounds:.2f}; the ratio falls "
          f"below 1 as n and |Q| grow — see benchmark F4)")


if __name__ == "__main__":
    main()
