"""APSP outcome record shared by every end-to-end algorithm."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.congest.metrics import PhaseLog, RoundStats
from repro.graphs.reference import all_pairs_shortest_paths
from repro.graphs.spec import Graph


@dataclass
class APSPResult:
    """Distance matrix + the per-step round ledger of one APSP run.

    ``dist[x, t]`` is the computed ``delta(x, t)`` (``inf`` when ``t`` is
    unreachable from ``x``); ``pred[x, t]`` the predecessor of ``t`` on a
    shortest ``x -> t`` path (-1 at the source / unreachable pairs) — the
    "last edge" part of the APSP output (Section 1.1); ``log`` holds one
    entry per paper step so the per-step budget of Theorem 1.1's proof can
    be inspected (experiment F1); ``meta`` carries algorithm-specific
    facts (``h``, ``|Q|``, ``|Q'|``, ``|B|``, blocker/delivery choices).
    """

    algorithm: str
    dist: np.ndarray
    log: PhaseLog
    meta: Dict[str, object] = field(default_factory=dict)
    pred: Optional[np.ndarray] = None

    @property
    def stats(self) -> RoundStats:
        return self.log.total(self.algorithm)

    @property
    def rounds(self) -> int:
        return self.stats.rounds

    def step_rounds(self) -> Dict[str, int]:
        """Rounds aggregated per step label (Theorem 1.1's budget view)."""
        return self.log.rounds_by_label()

    def path(self, x: int, t: int) -> list:
        """Reconstruct one shortest ``x -> t`` path from the predecessors.

        Returns the node sequence ``[x, ..., t]``; raises if the pair is
        unreachable or the result carries no routing information.
        """
        if self.pred is None:
            raise ValueError(f"{self.algorithm} recorded no predecessors")
        if math.isinf(self.dist[x, t]):
            raise ValueError(f"{t} is unreachable from {x}")
        out = [t]
        while out[-1] != x:
            p = int(self.pred[x, out[-1]])
            if p < 0 or len(out) > self.dist.shape[0]:
                raise AssertionError(
                    f"broken predecessor chain {x} -> {t} at {out[-1]}"
                )
            out.append(p)
        out.reverse()
        return out

    def verify_paths(self, graph: Graph, atol: float = 1e-6) -> None:
        """Check every reconstructed path is a real path of optimal weight."""
        if self.pred is None:
            raise ValueError(f"{self.algorithm} recorded no predecessors")
        weight = {}
        for v in range(graph.n):
            for u, w, _tb in graph.out_edges(v):
                weight[(v, u)] = w
        for x in range(graph.n):
            for t in range(graph.n):
                if x == t or math.isinf(self.dist[x, t]):
                    continue
                nodes = self.path(x, t)
                total = 0.0
                for a, b in zip(nodes, nodes[1:]):
                    if (a, b) not in weight:
                        raise AssertionError(f"({a},{b}) is not an edge")
                    total += weight[(a, b)]
                if abs(total - self.dist[x, t]) > atol * (1 + abs(total)):
                    raise AssertionError(
                        f"path {x}->{t} weighs {total}, distance says "
                        f"{self.dist[x, t]}"
                    )

    def verify(self, graph: Graph, atol: float = 1e-9) -> float:
        """Max abs error vs the centralized reference; raises on mismatch.

        Checks the reachability pattern exactly and the finite distances
        within ``atol``.  Returns the max finite deviation.
        """
        ref = all_pairs_shortest_paths(graph)
        if not (np.isfinite(ref) == np.isfinite(self.dist)).all():
            bad = np.argwhere(np.isfinite(ref) != np.isfinite(self.dist))
            raise AssertionError(
                f"{self.algorithm}: reachability mismatch at pairs {bad[:5]}"
            )
        mask = np.isfinite(ref)
        err = float(np.abs(self.dist[mask] - ref[mask]).max(initial=0.0))
        if err > atol:
            raise AssertionError(f"{self.algorithm}: distance error {err}")
        return err


__all__ = ["APSPResult"]
