"""Named axes of the scenario space: graph families, weight models, algorithms.

This is the single registry the CLI, the sweep subsystem, and the
benchmarks share, so a scenario named ``("er", 32, "integer", "det-n43",
seed=7)`` means the same instance everywhere.  Everything here is fully
deterministic in ``seed``.

The registry also carries each algorithm family's *claimed* round bound
(:class:`ClaimedBound` / :data:`CLAIMED_BOUNDS`) — the exponent, the
polylog factor the ``O~`` hides, and the paper locus the bound comes from
— so the sweep-level analysis (:mod:`repro.analysis.sweep_report`) can
compare fitted growth exponents against the paper's claims without every
bench re-declaring them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.apsp import (
    baseline_n32_apsp,
    deterministic_apsp,
    five_thirds_apsp,
    naive_bf_apsp,
    randomized_apsp,
)
from repro.graphs import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    grid2d,
    layered_digraph,
    path_graph,
    random_geometric,
    ring_graph,
    star_of_paths,
    watts_strogatz,
)
from repro.graphs.spec import Graph

#: End-to-end APSP contenders runnable as ``fn(net, graph)`` (Table 1 keys).
ALGORITHMS: Dict[str, Callable] = {
    "det-n43": deterministic_apsp,
    "det-n32": baseline_n32_apsp,
    "rand-n43": randomized_apsp,
    "det-n53": five_thirds_apsp,
    "naive-bf": naive_bf_apsp,
}

@dataclass(frozen=True)
class ClaimedBound:
    """One algorithm family's claimed CONGEST round bound.

    ``alpha`` is the polynomial exponent of the claimed bound
    (``rounds = O~(n^alpha)``) and ``polylog`` the power of ``log n``
    the ``O~`` hides; the sweep report divides measured series by
    ``n^alpha * (ln n)^polylog`` and checks the result for flatness.
    ``message_alpha`` is the trivial message-complexity ceiling that
    follows from the round bound (``<= 2m`` messages per round, and the
    sweep families keep ``m = Theta(n)``, so ``alpha + 1`` unless a
    tighter exponent is claimed).  ``source`` names the paper locus the
    bound is quoted from, so every verdict line in the report is
    traceable to a step/theorem.
    """

    algorithm: str
    bound: str  #: the paper-quoted bound, e.g. ``"O~(n^{4/3})"``
    alpha: float
    source: str
    polylog: int = 1
    message_alpha: Optional[float] = None

    @property
    def messages_alpha(self) -> float:
        """Claimed message exponent (defaults to ``alpha + 1``)."""
        return self.message_alpha if self.message_alpha is not None \
            else self.alpha + 1.0


#: Claimed round bounds per algorithm family (keys of :data:`ALGORITHMS`).
#: Single source of truth: Table 1's ``claimed_alpha`` column
#: (:data:`repro.analysis.tables.TABLE1_ROWS`) and the sweep report's
#: verdict lines both read from here.
CLAIMED_BOUNDS: Dict[str, ClaimedBound] = {
    "det-n43": ClaimedBound(
        "det-n43", "O~(n^{4/3})", 4.0 / 3.0,
        "Theorem 1.1 — Algorithm 1, Steps 1-7 (derandomized blocker, "
        "pipelined Step 6)",
    ),
    "rand-n43": ClaimedBound(
        "rand-n43", "O~(n^{4/3})", 4.0 / 3.0,
        "Agarwal-Ramachandran [1] — Algorithm 1 with the randomized "
        "Algorithm-2 blocker",
    ),
    "det-n32": ClaimedBound(
        "det-n32", "O~(n^{3/2})", 1.5,
        "Agarwal et al. [2] — baseline with h = n^{1/2} and the greedy "
        "blocker",
    ),
    "det-n53": ClaimedBound(
        "det-n53", "O~(n^{5/3})", 5.0 / 3.0,
        "Section 2 strawman — broadcast Step 6 dominates at n^{5/3}",
    ),
    "naive-bf": ClaimedBound(
        "naive-bf", "O(n * hop-diameter)", 2.0,
        "folklore — one n-hop Bellman-Ford per source, worst case D = "
        "Theta(n)",
        polylog=0,
    ),
}

#: Edge-weight models, as generator keyword overrides.  ``zero_frac``
#: models only exist for the Erdos-Renyi families (the other generators
#: have no zero-weight knob; :func:`make_graph` rejects the combination
#: by name).
WEIGHT_MODELS: Dict[str, Dict[str, object]] = {
    "uniform": {},  # each generator's default real-valued range
    "integer": {"wrange": (1.0, 16.0), "integer": True},
    "unit": {"wrange": (1.0, 1.0), "integer": True},
    "zero": {"zero_frac": 0.3},  # 30% zero-weight edges (er families only)
    # Heavy-tailed Pareto(alpha=1.2) weights: infinite variance, so a few
    # enormous edges dominate every instance.
    "pareto": {"dist": "pareto"},
    # Pareto tail plus 30% zero-weight edges (er families only).
    "pareto-zero": {"dist": "pareto", "zero_frac": 0.3},
    # Every weight within 1e-9 of 1: nearly all path comparisons tie, so
    # lexicographic tie-breaking decides the shortest-path trees.
    "near-tie": {"wrange": (1.0, 1.0 + 1e-9)},
}

GRAPH_FAMILIES = [
    "er", "er-directed", "grid", "ring", "path", "complete", "ba", "star",
    "layered", "rgg", "ws",
]

#: Named scenario-matrix presets for ``repro sweep --preset``.  Each value
#: is a set of :class:`~repro.experiments.spec.ScenarioMatrix` keyword
#: overrides; flags given explicitly on the command line still win.  The
#: ``large-n`` presets unlock the n-in-the-hundreds workloads that the
#: fitted-exponent analysis needs (they default to the engine fast path —
#: ``strict`` there would only re-validate protocols already exercised by
#: the strict tier-1 suite at small n).
SWEEP_PRESETS: Dict[str, Dict[str, object]] = {
    "quick": {
        "families": ["er", "path"],
        "sizes": [16, 24],
        "algorithms": ["det-n43", "naive-bf"],
    },
    "paper-small": {
        "families": ["er"],
        "sizes": [16, 24, 32, 48],
        "algorithms": sorted(ALGORITHMS),
    },
    "large-n": {
        "families": ["er", "ws"],
        "sizes": [128, 256],
        "algorithms": ["det-n43", "rand-n43"],
        "strict": False,
    },
    "large-n-smoke": {
        "families": ["er"],
        "sizes": [128],
        "algorithms": ["det-n43"],
        "strict": False,
    },
    # The same workloads with the fixed-schedule phases round-compressed
    # (bit-identical records, just faster — see repro.congest.compressed).
    "large-n-compressed": {
        "families": ["er", "ws"],
        "sizes": [128, 256],
        "algorithms": ["det-n43", "rand-n43"],
        "strict": False,
        "compress": True,
    },
    # The generating sweep behind `repro report` / docs/RESULTS.md: every
    # implemented Table-1 family across a topology spread (sparse random,
    # worst-case path, hub-heavy ba, small-world ws, geometric rgg) and a
    # size ladder wide enough for log-log fits, small enough for the CI
    # docs job.  Rounds and messages are pure functions of the spec, so
    # the report built from these records is byte-reproducible anywhere.
    "report": {
        "families": ["er", "path", "ba", "ws", "rgg"],
        "sizes": [16, 24, 32, 48, 64],
        "algorithms": sorted(ALGORITHMS),
        "strict": False,
    },
    # The robustness sweep behind the fault axis: every single-mode fault
    # model over a small grid, one fault stream each.  `repro sweep
    # --preset faults` runs it; `repro report --preset faults` renders
    # the per-family robustness section from its records.  Faulted runs
    # execute their fault-free baseline inline, so strict would only
    # double the (already tier-1-covered) validation cost.
    "faults": {
        "families": ["er", "path", "ws"],
        "sizes": [16, 24],
        "algorithms": ["det-n43", "naive-bf"],
        "strict": False,
        "faults": ["drop", "duplicate", "delay", "crash"],
        "fault_seeds": [1],
    },
}


def make_graph(family: str, n: int, seed: int, weights: str = "uniform") -> Graph:
    """Instantiate one generator family at roughly ``n`` nodes.

    ``weights`` picks a :data:`WEIGHT_MODELS` entry; the ``zero_frac``
    models (``zero``, ``pareto-zero``) only exist for the Erdos-Renyi
    families — the other generators have no zero-weight knob, and asking
    for one raises a :class:`ValueError` naming both the model and the
    family.
    """
    if weights not in WEIGHT_MODELS:
        raise ValueError(f"unknown weight model {weights!r}")
    wkw = dict(WEIGHT_MODELS[weights])
    if "zero_frac" in wkw and family not in ("er", "er-directed"):
        # Named rejection instead of letting the generator choke on an
        # unexpected zero_frac kwarg: the message carries both the model
        # and the family so sweep errors are self-explanatory.
        raise ValueError(
            f"weight model {weights!r} sets zero_frac, which only the er "
            f"families support; family {family!r} has no zero-weight knob"
        )
    if family == "er":
        return erdos_renyi(n, p=max(0.1, 4.0 / n), seed=seed, **wkw)
    if family == "er-directed":
        return erdos_renyi(n, p=max(0.12, 5.0 / n), seed=seed, directed=True,
                           **wkw)
    if family == "grid":
        side = max(2, round(math.sqrt(n)))
        return grid2d(side, max(2, n // side), seed=seed, **wkw)
    if family == "ring":
        return ring_graph(n, seed=seed, **wkw)
    if family == "path":
        return path_graph(n, seed=seed, **wkw)
    if family == "complete":
        return complete_graph(n, seed=seed, **wkw)
    if family == "ba":
        return barabasi_albert(n, seed=seed, **wkw)
    if family == "star":
        return star_of_paths(max(2, n // 6), 6, seed=seed, **wkw)
    if family == "layered":
        return layered_digraph(max(2, n // 4), 4, seed=seed, **wkw)
    if family == "rgg":
        return random_geometric(n, seed=seed, **wkw)
    if family == "ws":
        return watts_strogatz(n, seed=seed, **wkw)
    raise ValueError(f"unknown graph family {family!r}")


__all__ = [
    "ALGORITHMS",
    "CLAIMED_BOUNDS",
    "ClaimedBound",
    "GRAPH_FAMILIES",
    "SWEEP_PRESETS",
    "WEIGHT_MODELS",
    "make_graph",
]
