"""The distance-oracle serving layer: artifacts, store, and HTTP server."""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.congest import CongestNetwork
from repro.experiments import ALGORITHMS, ScenarioSpec, make_graph
from repro.experiments.runner import run_scenario
from repro.serving import (
    ArtifactError,
    DistanceOracle,
    OracleServer,
    OracleStore,
    UnknownScenario,
    build_artifact,
    build_store,
    load_artifact,
)
from repro.serving.artifact import MAGIC, artifact_path


def _spec(seed: int = 1, n: int = 14) -> ScenarioSpec:
    return ScenarioSpec(family="er", n=n, algorithm="naive-bf", seed=seed,
                        strict=False)


@pytest.fixture(scope="module")
def record():
    return run_scenario(_spec(), verify=True)


@pytest.fixture(scope="module")
def store_dir(record, tmp_path_factory):
    root = tmp_path_factory.mktemp("oracle-store")
    build_artifact(record, root)
    return root


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------

def test_artifact_round_trip_is_bit_identical(record, store_dir):
    oracle = load_artifact(artifact_path(store_dir, record["hash"]))
    spec = _spec()
    graph = make_graph(spec.family, spec.n, spec.seed)
    result = ALGORITHMS[spec.algorithm](
        CongestNetwork(graph, strict=False), graph)
    assert oracle.hash == record["hash"]
    assert oracle.header["dist_sha256"] == record["dist_sha256"]
    # byte-for-byte: the mmap'd plane equals the simulation output
    assert np.array_equal(np.asarray(oracle.dist),
                          np.asarray(result.dist, dtype=np.float64))
    assert np.array_equal(np.asarray(oracle.pred),
                          np.asarray(result.pred, dtype=np.int64))
    oracle.close()


def test_oracle_path_matches_apsp_result(record, store_dir):
    oracle = load_artifact(artifact_path(store_dir, record["hash"]))
    spec = _spec()
    graph = make_graph(spec.family, spec.n, spec.seed)
    result = ALGORITHMS[spec.algorithm](
        CongestNetwork(graph, strict=False), graph)
    result.verify_paths(graph)  # anchor: the reference routing is exact
    for s in range(0, graph.n, 3):
        for t in range(graph.n):
            if np.isinf(result.dist[s, t]):
                continue
            assert oracle.path(s, t) == result.path(s, t)
            assert oracle.distance(s, t) == float(result.dist[s, t])
    oracle.close()


def test_oracle_rejects_out_of_range_queries(record, store_dir):
    oracle = load_artifact(artifact_path(store_dir, record["hash"]))
    with pytest.raises(ValueError, match="source"):
        oracle.distance(-1, 0)
    with pytest.raises(ValueError, match="target"):
        oracle.distance(0, oracle.n)
    oracle.close()


def test_build_is_idempotent_and_force_rebuilds(record, tmp_path):
    first = build_artifact(record, tmp_path)
    mtime = first.path.stat().st_mtime_ns
    again = build_artifact(record, tmp_path)  # short-circuits on existing
    assert again.nbytes == first.nbytes
    assert again.path.stat().st_mtime_ns == mtime
    forced = build_artifact(record, tmp_path, force=True)
    assert forced.nbytes == first.nbytes
    assert forced.dist_sha256 == record["dist_sha256"]


def test_build_refuses_mismatched_record_hash(record, tmp_path):
    tampered = dict(record)
    tampered["dist_sha256"] = "0" * 64
    with pytest.raises(ArtifactError, match="not bit-identical"):
        build_artifact(tampered, tmp_path)


def test_build_rejects_faulted_records(tmp_path):
    faulted = run_scenario(
        ScenarioSpec(family="er", n=10, algorithm="naive-bf", strict=False,
                     faults="drop"),
        verify=False,
    )
    with pytest.raises(ArtifactError, match="faulted"):
        build_artifact(faulted, tmp_path)


def test_corrupt_plane_fails_checksum_verification(record, tmp_path):
    info = build_artifact(record, tmp_path)
    data = bytearray(info.path.read_bytes())
    data[-5] ^= 0xFF  # flip a byte inside the pred plane
    info.path.write_bytes(bytes(data))
    with pytest.raises(ArtifactError, match="corrupt"):
        load_artifact(info.path, verify=True)
    # verify=False maps without hashing: the corruption goes unnoticed
    oracle = load_artifact(info.path, verify=False)
    assert oracle.n == 14
    oracle.close()


def test_truncated_and_foreign_files_rejected(record, tmp_path):
    info = build_artifact(record, tmp_path)
    blob = info.path.read_bytes()
    short = tmp_path / "short.oracle"
    short.write_bytes(blob[:-64])
    with pytest.raises(ArtifactError, match="truncated|bytes"):
        load_artifact(short)
    bogus = tmp_path / "bogus.oracle"
    bogus.write_bytes(b"not an artifact at all" + bytes(64))
    with pytest.raises(ArtifactError, match="bad magic"):
        load_artifact(bogus)
    assert blob[:8] == MAGIC


def test_build_store_skips_unbuildable_records(tmp_path):
    records = tmp_path / "records"
    records.mkdir()
    ok = run_scenario(_spec(n=10), verify=False)
    bad = run_scenario(
        ScenarioSpec(family="er", n=10, algorithm="naive-bf", strict=False,
                     faults="drop"),
        verify=False,
    )
    for rec in (ok, bad):
        (records / f"{rec['hash']}.json").write_text(json.dumps(rec))
    built, skipped = build_store([records], tmp_path / "store")
    assert [info.hash for info in built] == [ok["hash"]]
    assert len(skipped) == 1 and "faulted" in skipped[0]


# ----------------------------------------------------------------------
# the store (LRU hot set)
# ----------------------------------------------------------------------

def _multi_store(tmp_path, seeds=(1, 2, 3)):
    for seed in seeds:
        build_artifact(run_scenario(_spec(seed=seed, n=10), verify=False),
                       tmp_path)
    return OracleStore(tmp_path, capacity=2)


def test_store_lru_eviction_and_counters(tmp_path):
    store = _multi_store(tmp_path)
    keys = store.keys()
    assert len(store) == 3
    first, second, third = (store.get(k) for k in keys)
    assert store.misses == 3 and store.evictions == 1
    # the first-loaded oracle fell out of the capacity-2 hot set
    assert first.dist is None  # evicted oracles are closed
    assert isinstance(third, DistanceOracle) and third.dist is not None
    again = store.get(keys[2])
    assert again is third and store.hits == 1
    loaded = [e["hash"] for e in store.catalog() if e["loaded"]]
    assert loaded == sorted([keys[1], keys[2]])
    stats = store.stats()
    assert stats["loaded"] == 2 and stats["capacity"] == 2
    store.close()
    assert store.stats()["loaded"] == 0


def test_store_unknown_scenario(store_dir):
    store = OracleStore(store_dir)
    with pytest.raises(UnknownScenario, match="unknown scenario"):
        store.get("feedfacedeadbeef")
    store.close()


def test_store_requires_artifacts(tmp_path):
    with pytest.raises(ArtifactError, match="no .oracle artifacts"):
        OracleStore(tmp_path)
    with pytest.raises(ArtifactError, match="not a directory"):
        OracleStore(tmp_path / "missing")


# ----------------------------------------------------------------------
# the HTTP server
# ----------------------------------------------------------------------

async def _get(reader, writer, target: str):
    writer.write(f"GET {target} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = (await reader.readline()).decode().strip()
        if not line:
            break
        name, _, value = line.partition(":")
        if name.lower() == "content-length":
            length = int(value)
    return status, json.loads(await reader.readexactly(length))


def _serve(store, coro_fn):
    """Run ``coro_fn(server)`` against a freshly started server."""
    async def runner():
        server = await OracleServer(store, port=0).start()
        try:
            return await coro_fn(server)
        finally:
            await server.close()

    return asyncio.run(runner())


def test_server_routes_and_metrics(record, store_dir):
    store = OracleStore(store_dir)
    oracle = store.get(record["hash"])

    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)
        status, body = await _get(reader, writer, "/healthz")
        assert (status, body) == (200, {"status": "ok"})
        status, body = await _get(reader, writer, "/scenarios")
        assert status == 200 and body["count"] == 1
        assert body["scenarios"][0]["hash"] == record["hash"]
        target = (f"/distance?scenario={record['hash']}"
                  f"&source=0&target=3")
        status, body = await _get(reader, writer, target)
        assert status == 200
        # JSON float repr round-trips: parsed == the mmap'd float64
        assert body["distance"] == oracle.distance(0, 3)
        status, body = await _get(
            reader, writer,
            f"/path?scenario={record['hash']}&source=0&target=3")
        assert status == 200
        assert body["path"] == oracle.path(0, 3)
        assert body["hops"] == len(body["path"]) - 1
        # error shapes
        status, body = await _get(reader, writer, "/nope")
        assert status == 404 and "unknown route" in body["error"]
        status, body = await _get(
            reader, writer, "/distance?scenario=ffff&source=0&target=1")
        assert status == 404 and "unknown scenario" in body["error"]
        status, body = await _get(
            reader, writer, f"/distance?scenario={record['hash']}")
        assert status == 400 and "missing query parameter" in body["error"]
        status, body = await _get(
            reader, writer,
            f"/distance?scenario={record['hash']}&source=x&target=1")
        assert status == 400 and "integers" in body["error"]
        status, body = await _get(reader, writer, "/stats")
        assert status == 200
        assert body["total_requests"] == 8
        assert body["errors"] == {"/distance": 3, "/nope": 1}
        assert body["latency_ms"]["p99"] >= body["latency_ms"]["p50"] >= 0
        assert body["store"]["scenarios"] == 1
        writer.close()
        await writer.wait_closed()

    _serve(store, scenario)
    store.close()


def test_server_rejects_non_get(record, store_dir):
    store = OracleStore(store_dir)

    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)
        writer.write(b"POST /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        assert status == 405
        writer.close()
        await writer.wait_closed()

    _serve(store, scenario)
    store.close()


def test_server_concurrent_requests_are_correct(record, store_dir):
    store = OracleStore(store_dir)
    oracle = store.get(record["hash"])
    n = oracle.n

    async def client(server, client_id: int):
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)
        try:
            for i in range(25):
                s, t = (client_id + 3 * i) % n, (7 * i + client_id) % n
                status, body = await _get(
                    reader, writer,
                    f"/distance?scenario={record['hash']}"
                    f"&source={s}&target={t}")
                assert status == 200
                want = oracle.distance(s, t)
                got = (float("inf") if body["distance"] is None
                       else body["distance"])
                assert got == want, f"client {client_id} pair ({s},{t})"
        finally:
            writer.close()
            await writer.wait_closed()

    async def scenario(server):
        await asyncio.gather(*[client(server, c) for c in range(6)])
        return server.metrics.snapshot(store.stats())

    stats = _serve(store, scenario)
    assert stats["total_requests"] == 150
    assert stats["errors"] == {}
    store.close()


def test_metrics_snapshot_percentiles():
    from repro.serving import ServingMetrics

    metrics = ServingMetrics(window=100)
    for i in range(100):
        metrics.observe("/distance", (i + 1) / 1000, 200)
    metrics.observe("/distance", 0.5, 404)
    snap = metrics.snapshot()
    assert snap["requests"] == {"/distance": 101}
    assert snap["errors"] == {"/distance": 1}
    # window keeps the last 100 latencies: 2ms..101ms plus the 500ms error
    assert snap["latency_ms"]["p50"] == pytest.approx(52.0, abs=1.5)
    assert snap["latency_ms"]["p99"] == pytest.approx(101.0, abs=401)
    assert snap["qps"] > 0
    assert time.monotonic() >= metrics.started
