"""Documentation stays true: snippets execute, links resolve, API.md fresh.

Three guarantees over ``README.md`` and ``docs/*.md``:

* every fenced ``python`` code block executes (doctest-style — a block
  may opt out with an immediately preceding ``<!-- doc-test: skip -->``
  marker for illustrative pseudo-code);
* every relative markdown link points at a file that exists in the repo;
* ``docs/API.md`` matches what ``tools/gen_api_docs.py`` generates from
  the live docstrings.
"""

from __future__ import annotations

import importlib.util
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = sorted(REPO.glob("docs/*.md")) + [REPO / "README.md"]

SKIP_MARKER = "<!-- doc-test: skip -->"
FENCE = re.compile(r"```python[^\n]*\n(.*?)```", re.DOTALL)
# [text](target) — excluding images; target split from any #fragment
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def doc_ids(paths):
    return [str(p.relative_to(REPO)) for p in paths]


def python_blocks(text: str):
    """(offset, code) for every fenced python block not opted out."""
    for match in FENCE.finditer(text):
        preceding = text[: match.start()].rstrip().rsplit("\n", 1)[-1]
        if SKIP_MARKER in preceding:
            continue
        yield match.start(), match.group(1)


@pytest.mark.parametrize("doc", DOCS, ids=doc_ids(DOCS))
def test_doc_snippets_execute(doc):
    text = doc.read_text()
    blocks = list(python_blocks(text))
    for offset, code in blocks:
        namespace = {"__name__": "__doc_snippet__"}
        try:
            exec(compile(code, f"{doc.name}@{offset}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            line = text[:offset].count("\n") + 1
            pytest.fail(
                f"{doc.relative_to(REPO)} snippet at line {line} failed: "
                f"{exc!r}\n{code}"
            )


@pytest.mark.parametrize("doc", DOCS, ids=doc_ids(DOCS))
def test_doc_intra_repo_links_resolve(doc):
    text = doc.read_text()
    broken = []
    for target in LINK.findall(text):
        if re.match(r"^[a-z]+:", target):  # http:, https:, mailto:, ...
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure in-page anchor
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, (
        f"{doc.relative_to(REPO)} has broken intra-repo links: {broken}"
    )


def test_api_md_is_fresh():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO / "tools" / "gen_api_docs.py"
    )
    gen = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(gen)
    current = (REPO / "docs" / "API.md").read_text()
    assert current == gen.render(), (
        "docs/API.md is stale; regenerate with: python tools/gen_api_docs.py"
    )


def test_docs_exist_and_are_linked_from_readme():
    readme = (REPO / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/API.md" in readme
    assert "docs/REPRODUCTION.md" in readme
    assert "docs/RESULTS.md" in readme
    for name in ("ARCHITECTURE.md", "REPRODUCTION.md", "RESULTS.md"):
        assert (REPO / "docs" / name).exists()
    # the paper-to-code map and the results page cross-link
    arch = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    assert "REPRODUCTION.md" in arch and "RESULTS.md" in arch
    repro_map = (REPO / "docs" / "REPRODUCTION.md").read_text()
    assert "RESULTS.md" in repro_map
