"""Workload generators for tests and the benchmark harness.

The paper evaluates nothing empirically, so the choice of inputs is ours.
We provide the standard families used by distributed-shortest-path
implementations (random graphs, grids, rings, trees, preferential
attachment) plus adversarial shapes that stress specific components:

* :func:`star_of_paths` — many long disjoint paths meeting at a hub;
  maximizes congestion at the hub, stressing the bottleneck-node machinery
  of Algorithm 13.
* :func:`broom` — a long handle feeding a wide brush; stresses the
  round-robin pipeline of Algorithm 9 (one node must forward messages for
  many sinks).
* :func:`layered_digraph` — directed layered graphs where many pairs are
  far apart in hops, exercising the ``hops > n^{2/3}`` case (Algorithm 8).

All generators take a ``seed`` and are fully deterministic; all guarantee a
connected underlying undirected graph (a CONGEST prerequisite).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.graphs.spec import Graph

WeightRange = Tuple[float, float]

#: Shape parameter of the heavy-tailed ``dist="pareto"`` weight draw:
#: alpha < 2 gives infinite variance, so a few enormous edges dominate
#: every instance — the adversarial regime for weighted-distance
#: pipelines tuned on uniform weights.
PARETO_ALPHA = 1.2

#: Weight distributions every generator accepts via ``dist=``.
DISTRIBUTIONS = ("uniform", "pareto")


def _weights(
    rng: random.Random,
    wrange: WeightRange,
    integer: bool,
    zero_frac: float,
    dist: str = "uniform",
):
    lo, hi = wrange
    if not 0.0 <= zero_frac <= 1.0:
        raise ValueError("zero_frac must be in [0, 1]")
    if dist not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown weight distribution {dist!r}; one of {DISTRIBUTIONS}"
        )

    def draw() -> float:
        if zero_frac and rng.random() < zero_frac:
            return 0.0
        if dist == "pareto":
            w = rng.paretovariate(PARETO_ALPHA)
            return float(round(w)) if integer else w
        if integer:
            return float(rng.randint(int(lo), int(hi)))
        return rng.uniform(lo, hi)

    return draw


def erdos_renyi(
    n: int,
    p: float = 0.2,
    seed: int = 0,
    directed: bool = False,
    wrange: WeightRange = (0.0, 100.0),
    integer: bool = False,
    zero_frac: float = 0.0,
    dist: str = "uniform",
) -> Graph:
    """G(n, p) with a random Hamiltonian backbone for connectivity.

    The backbone (a random permutation cycle) guarantees the underlying
    undirected graph is connected; the remaining pairs appear independently
    with probability ``p``.
    """
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, zero_frac, dist)
    perm = list(range(n))
    rng.shuffle(perm)
    pairs = set()
    for i in range(n):
        u, v = perm[i], perm[(i + 1) % n]
        if n > 1:
            pairs.add((u, v) if directed else (min(u, v), max(u, v)))
    for u in range(n):
        for v in range(n) if directed else range(u + 1, n):
            if u == v:
                continue
            if rng.random() < p:
                pairs.add((u, v) if directed else (min(u, v), max(u, v)))
    edges = [(u, v, draw()) for (u, v) in sorted(pairs)]
    return Graph(n, edges, directed=directed, seed=seed, name=f"er(n={n},p={p})")


def path_graph(
    n: int,
    seed: int = 0,
    wrange: WeightRange = (1.0, 10.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """The n-node path 0-1-...-(n-1): diameter Θ(n), worst case for hops."""
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    edges = [(i, i + 1, draw()) for i in range(n - 1)]
    return Graph(n, edges, seed=seed, name=f"path(n={n})")


def ring_graph(
    n: int,
    seed: int = 0,
    wrange: WeightRange = (1.0, 10.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """The n-cycle."""
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    edges = [(i, (i + 1) % n, draw()) for i in range(n)]
    if n == 2:
        edges = edges[:1]
    return Graph(n, edges, seed=seed, name=f"ring(n={n})")


def complete_graph(
    n: int,
    seed: int = 0,
    wrange: WeightRange = (0.0, 100.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """K_n — diameter 1, maximal bandwidth."""
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    edges = [(u, v, draw()) for u in range(n) for v in range(u + 1, n)]
    return Graph(n, edges, seed=seed, name=f"complete(n={n})")


def grid2d(
    rows: int,
    cols: int,
    seed: int = 0,
    wrange: WeightRange = (1.0, 10.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """rows x cols grid: moderate diameter, planar congestion patterns."""
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1, draw()))
            if r + 1 < rows:
                edges.append((v, v + cols, draw()))
    return Graph(rows * cols, edges, seed=seed, name=f"grid({rows}x{cols})")


def random_tree(
    n: int,
    seed: int = 0,
    wrange: WeightRange = (1.0, 10.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """Uniform random recursive tree — sparse, unique paths."""
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    edges = [(rng.randrange(v), v, draw()) for v in range(1, n)]
    return Graph(n, edges, seed=seed, name=f"tree(n={n})")


def barabasi_albert(
    n: int,
    m_attach: int = 2,
    seed: int = 0,
    wrange: WeightRange = (1.0, 10.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """Preferential-attachment graph: heavy hubs, small diameter."""
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    if n < 2:
        return Graph(n, [], seed=seed, name=f"ba(n={n})")
    targets = [0]
    pairs = set()
    repeated: list = [0]
    for v in range(1, n):
        k = min(m_attach, len(set(repeated)))
        chosen = set()
        while len(chosen) < k:
            chosen.add(rng.choice(repeated))
        for u in chosen:
            pairs.add((min(u, v), max(u, v)))
            repeated.append(u)
        repeated.extend([v] * k)
    edges = [(u, v, draw()) for (u, v) in sorted(pairs)]
    return Graph(n, edges, seed=seed, name=f"ba(n={n},m={m_attach})")


def layered_digraph(
    layers: int,
    width: int,
    seed: int = 0,
    p: float = 0.6,
    wrange: WeightRange = (1.0, 10.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """Directed layered graph: many pairs at hop distance Θ(layers).

    Node ``l * width + i`` sits in layer ``l``; edges go from layer ``l``
    to ``l + 1`` with probability ``p`` (plus a deterministic backbone so
    every node has an outgoing edge and the underlying graph is connected).
    This makes ``hops(x, c) > n^{2/3}`` common, exercising Algorithm 8.
    """
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    n = layers * width
    pairs = set()
    for l in range(layers - 1):
        for i in range(width):
            u = l * width + i
            pairs.add((u, (l + 1) * width + i))  # backbone
            for j in range(width):
                if rng.random() < p:
                    pairs.add((u, (l + 1) * width + j))
    edges = [(u, v, draw()) for (u, v) in sorted(pairs)]
    return Graph(
        n, edges, directed=True, seed=seed, name=f"layered({layers}x{width})"
    )


def star_of_paths(
    arms: int,
    arm_len: int,
    seed: int = 0,
    wrange: WeightRange = (1.0, 10.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """``arms`` disjoint paths of length ``arm_len`` joined at a hub (node 0).

    Every cross-arm shortest path passes through the hub, so the hub's
    count (Algorithm 14) is Θ(n) in every sink tree — the canonical
    bottleneck-node instance.
    """
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    edges = []
    nxt = 1
    for _ in range(arms):
        prev = 0
        for _ in range(arm_len):
            edges.append((prev, nxt, draw()))
            prev = nxt
            nxt += 1
    return Graph(nxt, edges, seed=seed, name=f"star({arms}x{arm_len})")


def random_geometric(
    n: int,
    radius: Optional[float] = None,
    seed: int = 0,
    wrange: WeightRange = (0.0, 0.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """Unit-square random geometric graph (the classic sensor-net model).

    Nodes are uniform points; an edge joins pairs within ``radius``
    (default ``1.6 * sqrt(ln n / n)``, just above the connectivity
    threshold).  With the default ``wrange`` the *Euclidean distance* is
    the edge weight, so shortest paths are geometrically meaningful; any
    other range draws weights like the other generators.  A nearest-
    neighbor chain over the x-sorted points guarantees connectivity.
    """
    import math as _math

    rng = random.Random(seed)
    if radius is None:
        radius = 1.6 * _math.sqrt(_math.log(max(n, 2)) / max(n, 2))
    pts = [(rng.random(), rng.random()) for _ in range(n)]
    draw = _weights(rng, wrange, integer, 0.0, dist)
    euclid = wrange == (0.0, 0.0) and dist == "uniform"

    def dist(i: int, j: int) -> float:
        return _math.hypot(pts[i][0] - pts[j][0], pts[i][1] - pts[j][1])

    pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            if dist(i, j) <= radius:
                pairs.add((i, j))
    order = sorted(range(n), key=lambda i: pts[i])
    for a, b in zip(order, order[1:]):  # connectivity backbone
        pairs.add((min(a, b), max(a, b)))
    edges = [
        (u, v, dist(u, v) if euclid else draw()) for (u, v) in sorted(pairs)
    ]
    return Graph(n, edges, seed=seed, name=f"rgg(n={n},r={radius:.2f})")


def watts_strogatz(
    n: int,
    k: int = 4,
    beta: float = 0.2,
    seed: int = 0,
    wrange: WeightRange = (1.0, 10.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """Small-world graph: ring lattice with ``k`` neighbors, rewired.

    Each edge of the ``k``-nearest-neighbor ring is rewired with
    probability ``beta`` to a random endpoint (keeping the lattice side,
    so the graph stays connected).  Low diameter plus local clustering —
    the regime where the `h`-hop machinery saturates quickly.
    """
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    half = max(1, k // 2)
    pairs = set()
    for u in range(n):
        for off in range(1, half + 1):
            v = (u + off) % n
            if u == v:
                continue
            if rng.random() < beta:
                w = rng.randrange(n)
                tries = 0
                while (w == u or (min(u, w), max(u, w)) in pairs) and tries < n:
                    w = rng.randrange(n)
                    tries += 1
                if w != u and (min(u, w), max(u, w)) not in pairs:
                    pairs.add((min(u, w), max(u, w)))
                    continue
            pairs.add((min(u, v), max(u, v)))
    for u in range(n):  # ring backbone survives rewiring
        v = (u + 1) % n
        if u != v:
            pairs.add((min(u, v), max(u, v)))
    edges = [(u, v, draw()) for (u, v) in sorted(pairs)]
    return Graph(n, edges, seed=seed, name=f"ws(n={n},k={k},b={beta})")


def caterpillar(
    spine_len: int,
    legs_per_node: int = 2,
    seed: int = 0,
    wrange: WeightRange = (1.0, 10.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """A spine path with pendant leaves — maximal leaf-to-spine traffic.

    Every root-to-leaf path in a spine node's tree ends one hop off the
    spine, so blocker sets concentrate on the spine; a cheap adversarial
    shape for the score machinery.
    """
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    edges = [(i, i + 1, draw()) for i in range(spine_len - 1)]
    nxt = spine_len
    for s in range(spine_len):
        for _ in range(legs_per_node):
            edges.append((s, nxt, draw()))
            nxt += 1
    return Graph(
        nxt, edges, seed=seed, name=f"caterpillar({spine_len}x{legs_per_node})"
    )


def broom(
    handle_len: int,
    brush: int,
    seed: int = 0,
    wrange: WeightRange = (1.0, 10.0),
    integer: bool = False,
    dist: str = "uniform",
) -> Graph:
    """A path of ``handle_len`` nodes whose far end fans out to ``brush`` leaves.

    All brush leaves' messages to sinks near node 0 must serialize through
    the handle — the shape that makes the round-robin pipeline's progress
    argument (Lemma 4.6) non-trivial.
    """
    rng = random.Random(seed)
    draw = _weights(rng, wrange, integer, 0.0, dist)
    edges = [(i, i + 1, draw()) for i in range(handle_len - 1)]
    hub = handle_len - 1
    for b in range(brush):
        edges.append((hub, handle_len + b, draw()))
    return Graph(
        handle_len + brush, edges, seed=seed, name=f"broom({handle_len}+{brush})"
    )


__all__ = [
    "DISTRIBUTIONS",
    "PARETO_ALPHA",
    "barabasi_albert",
    "broom",
    "caterpillar",
    "complete_graph",
    "erdos_renyi",
    "grid2d",
    "layered_digraph",
    "path_graph",
    "random_geometric",
    "random_tree",
    "ring_graph",
    "star_of_paths",
    "watts_strogatz",
]
