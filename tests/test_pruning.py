"""Subtree-removal protocols: Algorithm 6 and the pipelined pruner."""

from __future__ import annotations

import pytest

from repro.congest import CongestNetwork
from repro.csssp import ParallelPruner, remove_subtrees_sequential
from repro.blocker.scores import leaf_indicators, subtree_sums

from conftest import collection_of, graph_of


def centralized_removed_state(coll, roots):
    """Apply the same removals with the centralized helper."""
    ref = coll.copy()
    for x, t in ref.trees.items():
        for z in roots:
            if t.depth[z] >= 1 and not t.removed[z]:
                t.mark_removed(z)
    return ref


def centralized_subtree_sums(coll, x, values):
    t = coll.trees[x]
    out = [0.0] * coll.n
    for v in range(coll.n):
        if t.live(v):
            out[v] = sum(values[u] for u in t.subtree(v))
    return out


@pytest.mark.parametrize("kind", ["er-sparse", "grid", "path", "star", "er-directed"])
def test_sequential_removal_matches_centralized(kind):
    g = graph_of(kind)
    base = collection_of(kind, 3)
    coll = base.copy()
    net = CongestNetwork(g)
    roots = [1, g.n // 2, g.n - 2]
    stats = remove_subtrees_sequential(net, coll, roots)
    ref = centralized_removed_state(base, roots)
    for x in coll.trees:
        assert coll.trees[x].removed == ref.trees[x].removed, f"tree {x}"
    # Algorithm 6 cost: at most h rounds per tree with any removal work.
    assert stats.rounds <= len(coll.trees) * (coll.h + 1)


def test_sequential_removal_skips_roots_at_depth_zero():
    coll = collection_of("path", 3).copy()
    g = graph_of("path")
    net = CongestNetwork(g)
    remove_subtrees_sequential(net, coll, [0])
    # Node 0 is root of T_0: not removed there...
    assert coll.trees[0].live(0)
    # ...but removed (with its subtree) wherever it sits at depth >= 1.
    t1 = coll.trees[1]
    assert t1.depth[0] == 1 and not t1.live(0)


def test_sequential_removal_idempotent():
    g = graph_of("er-sparse")
    coll = collection_of("er-sparse", 3).copy()
    net = CongestNetwork(g)
    remove_subtrees_sequential(net, coll, [3])
    snapshot = {x: list(t.removed) for x, t in coll.trees.items()}
    stats = remove_subtrees_sequential(net, coll, [3])
    assert {x: list(t.removed) for x, t in coll.trees.items()} == snapshot
    assert stats.rounds == 0  # nothing live to remove -> no phases run


@pytest.mark.parametrize("kind", ["er-sparse", "grid", "star", "broom"])
def test_parallel_pruner_matches_sequential_and_keeps_aggregates(kind):
    g = graph_of(kind)
    base = collection_of(kind, 3)
    net = CongestNetwork(g)

    coll = base.copy()
    agg = {
        x: centralized_subtree_sums(base, x, leaf_indicators(base, x))
        for x in base.trees
    }
    pruner = ParallelPruner(net, coll, agg)

    # Initial totals equal the centralized score definition.
    def expected_totals(ref):
        totals = [0.0] * ref.n
        for x, t in ref.trees.items():
            sums = centralized_subtree_sums(ref, x, leaf_indicators(ref, x))
            for v in range(ref.n):
                if t.live(v) and t.depth[v] >= 1:
                    totals[v] += sums[v]
        return totals

    assert pruner.totals == pytest.approx(expected_totals(base))

    victims = [v for v in (2, 5, g.n - 3) if 0 <= v < g.n]
    removed_so_far = []
    for z in victims:
        pruner.remove([z])
        removed_so_far.append(z)
        ref = centralized_removed_state(base, removed_so_far)
        for x in coll.trees:
            assert coll.trees[x].removed == ref.trees[x].removed, (z, x)
        # Aggregates stay exact for live nodes after every removal.
        for x, t in coll.trees.items():
            expect = centralized_subtree_sums(ref, x, leaf_indicators(ref, x))
            for v in range(g.n):
                if t.live(v):
                    assert agg[x][v] == pytest.approx(expect[v]), (z, x, v)
        assert pruner.totals == pytest.approx(expected_totals(ref))


def test_parallel_pruner_batch_removal_nested_roots():
    """Removing an ancestor and its descendant together must not
    double-subtract (the absorption rule)."""
    g = graph_of("path")
    base = collection_of("path", 4)
    net = CongestNetwork(g)
    coll = base.copy()
    agg = {x: centralized_subtree_sums(base, x, leaf_indicators(base, x))
           for x in base.trees}
    pruner = ParallelPruner(net, coll, agg)
    # In T_0 of a path graph, 2 is an ancestor of 3.
    pruner.remove([2, 3])
    ref = centralized_removed_state(base, [2, 3])
    for x in coll.trees:
        assert coll.trees[x].removed == ref.trees[x].removed
    def expected_totals(ref):
        totals = [0.0] * ref.n
        for x, t in ref.trees.items():
            sums = centralized_subtree_sums(ref, x, leaf_indicators(ref, x))
            for v in range(ref.n):
                if t.live(v) and t.depth[v] >= 1:
                    totals[v] += sums[v]
        return totals
    assert pruner.totals == pytest.approx(expected_totals(ref))


def test_parallel_pruner_rounds_linear_not_quadratic():
    """One pick costs O(n + h) rounds — the [2] greedy cleanup budget."""
    kind = "er-sparse"
    g = graph_of(kind)
    base = collection_of(kind, 3)
    net = CongestNetwork(g)
    coll = base.copy()
    agg = {x: centralized_subtree_sums(base, x, leaf_indicators(base, x))
           for x in base.trees}
    pruner = ParallelPruner(net, coll, agg)
    stats = pruner.remove([g.n // 2])
    assert stats.rounds <= g.n + coll.h + 4


def test_subtree_sums_respect_removals():
    g = graph_of("er-sparse")
    base = collection_of("er-sparse", 3)
    net = CongestNetwork(g)
    coll = base.copy()
    x = coll.sources[0]
    values = leaf_indicators(coll, x)
    before, _ = subtree_sums(net, coll, x, values)
    assert before == pytest.approx(centralized_subtree_sums(coll, x, values))
    kids = coll.trees[x].live_children(x)
    if kids:
        coll.trees[x].mark_removed(kids[0])
        values = leaf_indicators(coll, x)
        after, _ = subtree_sums(net, coll, x, values)
        assert after == pytest.approx(centralized_subtree_sums(coll, x, values))
        assert after[kids[0]] == 0.0
