"""Value triples carried by Step 6.

A "distance value" in Steps 5-7 is the full lexicographic label of the
tie-broken shortest path, ``(weight, hops, tb)``
(:data:`repro.graphs.spec.Cost`): three CONGEST words instead of one, still
constant size.  Carrying the integer tie-break fingerprint end-to-end is
what lets Step 7 reconstruct predecessor pointers ("the last edge on each
such shortest path", Section 1.1) without ambiguity — two different paths
of equal weight have different fingerprints, so the confirming relaxation
at a blocker node identifies its true predecessor exactly.

Helpers here convert between value dictionaries and the centralized
references (used by standalone Step-6 tests and benchmarks).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.graphs.reference import h_hop_labels
from repro.graphs.spec import Cost, Graph, INF_COST


def add_triples(a: Cost, b: Cost) -> Cost:
    """Concatenate two path labels (component-wise sum)."""
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def lex_min(a: Cost, b: Cost) -> Cost:
    """The lexicographically smaller of two labels."""
    return a if a <= b else b


def is_finite(value: Cost) -> bool:
    """Whether the label describes a real path (finite weight)."""
    return value[0] < math.inf


def reference_values(
    graph: Graph, q_nodes: Sequence[int]
) -> List[Dict[int, Cost]]:
    """Exact ``delta(x, c)`` triples, centralized (tests / benches).

    ``out[x][c]`` is the lexicographic label of the tie-broken shortest
    ``x -> c`` path — what a perfect Steps 1-5 would leave at ``x``.
    """
    out: List[Dict[int, Cost]] = [{} for _ in range(graph.n)]
    for c in q_nodes:
        labels = h_hop_labels(graph, c, graph.n, reverse=True)
        for x in range(graph.n):
            if labels[x] != INF_COST:
                out[x][c] = labels[x]
    return out


__all__ = ["add_triples", "is_finite", "lex_min", "reference_values"]
