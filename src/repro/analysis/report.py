"""Plain-text rendering of benchmark outputs.

The benches print the same rows/series the paper reports (Table 1 plus
the derived figures F1-F8); these helpers keep the formatting in one
place and the bench files declarative.  The markdown twin — the
committed results page — is rendered by
:func:`repro.analysis.sweep_report.render_results_md` from the same
fitted rows, so the two output styles cannot drift apart.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[j])), *(len(r[j]) for r in cells)) if cells else len(str(headers[j]))
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[j].rjust(widths[j]) if _numericish(row[j])
                               else row[j].ljust(widths[j]) for j in range(len(row))))
    return "\n".join(lines)


def render_series(
    name: str, ns: Sequence[int], values: Sequence[float], note: str = ""
) -> str:
    """One measured series as ``name: (n, value) ...`` with an optional note."""
    pairs = "  ".join(f"({n}, {_fmt(v)})" for n, v in zip(ns, values))
    tail = f"   [{note}]" if note else ""
    return f"{name}: {pairs}{tail}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def _numericish(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


__all__ = ["render_series", "render_table"]
