"""Smoke tests for the example scripts (they must never rot).

Each example's ``main()`` runs with small arguments under a patched
``sys.argv``; internal verification inside the examples (every script
checks its own outputs) makes these genuine end-to-end tests.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_main(name: str, argv, capsys):
    module = load_example(name)
    old = sys.argv
    sys.argv = [name] + [str(a) for a in argv]
    try:
        module.main()
    finally:
        sys.argv = old
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_main("quickstart", [16, 2], capsys)
    assert "verified exact" in out
    assert "per-step round budget" in out


def test_compare_algorithms(capsys):
    out = run_main("compare_algorithms", ["ring"], capsys)
    assert "fitted alpha" in out
    assert "det-n43" in out


def test_blocker_set_demo(capsys):
    out = run_main("blocker_set_demo", [16, 2], capsys)
    assert "covers all?" in out
    assert "good-set machinery" in out


def test_step6_pipeline(capsys):
    out = run_main("step6_pipeline", [3, 5], capsys)
    assert "all values exact" in out
    assert "broadcast strawman" in out


def test_sweep_report_example(capsys):
    out = run_main("sweep_report", [16, 2], capsys)
    assert "cross-family exponent fits" in out
    assert "verdicts:" in out
    assert "det-n43" in out and "naive-bf" in out


def test_routing_tables(capsys):
    out = run_main("routing_tables", [4, 3], capsys)
    assert "verified exact (distances + routes)" in out
    assert "routing table" in out
