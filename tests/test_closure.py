"""Step-5 ``local_closure``: numpy blocked min-plus vs the Python oracle.

The numpy backend must be *bit-identical* to the retained triple-loop
oracle on every input the driver can produce — including unreachable
pairs (inf labels), zero-weight ties decided by hops/tie-break planes,
and adversarially large weights (where the int64 encoding must either
stay exact or fall back).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.apsp import deterministic_apsp, three_phase_apsp
from repro.apsp.closure import BACKENDS, ClosureOverflow, local_closure
from repro.apsp.driver import default_h
from repro.congest.network import CongestNetwork
from repro.graphs import erdos_renyi
from repro.graphs.reference import h_hop_labels
from repro.graphs.spec import INF_COST, quantize_weight


# ---------------------------------------------------------------------------
# helpers


def driver_inputs(graph, q_nodes, h):
    """Build (entries, lab_to) exactly as the 3-phase driver does."""
    lab_to = {}
    for c in q_nodes:
        lab_to[c] = h_hop_labels(graph, c, h, reverse=True)
    entries = []
    for ci, c in enumerate(q_nodes):
        for cj, cp in enumerate(q_nodes):
            lab = lab_to[cp][c]
            if c != cp and lab != INF_COST:
                entries.append((ci, cj) + lab)
    return entries, lab_to


def random_instance(seed, n=None, q=None, zero_frac=0.0, wmax=9.0):
    rng = random.Random(seed)
    n = n if n is not None else rng.randint(6, 20)
    graph = erdos_renyi(
        n,
        p=rng.uniform(0.15, 0.5),
        seed=seed,
        directed=rng.random() < 0.5,
        wrange=(0.0 if zero_frac else 0.25, wmax),
        zero_frac=zero_frac,
    )
    q = q if q is not None else rng.randint(1, max(1, n // 2))
    q_nodes = sorted(rng.sample(range(n), q))
    h = rng.randint(1, 4)
    entries, lab_to = driver_inputs(graph, q_nodes, h)
    return graph, q_nodes, entries, lab_to


def assert_backends_agree(q_nodes, entries, lab_to, n, **kw):
    ref = local_closure(q_nodes, entries, lab_to, n, backend="python")
    out = local_closure(q_nodes, entries, lab_to, n, backend="numpy", **kw)
    assert out == ref  # bit-identical: same floats, hops, tie-breaks
    return ref


# ---------------------------------------------------------------------------
# equivalence on random weighted digraphs


@pytest.mark.parametrize("seed", range(12))
def test_numpy_matches_oracle_on_random_digraphs(seed):
    graph, q_nodes, entries, lab_to = random_instance(seed)
    assert_backends_agree(q_nodes, entries, lab_to, graph.n)


@pytest.mark.parametrize("seed", [3, 5])
def test_numpy_matches_oracle_with_zero_weight_ties(seed):
    # 40% zero-weight edges: equal-weight paths force the hops and
    # tie-break planes to decide, the hardest case for lexicographic
    # vectorization.
    graph, q_nodes, entries, lab_to = random_instance(seed, zero_frac=0.4)
    assert_backends_agree(q_nodes, entries, lab_to, graph.n)


def test_numpy_matches_oracle_with_unreachable_pairs():
    # Two disjoint halves: every cross-half label is INF_COST and must
    # stay absent from the result.
    rng = random.Random(9)
    half = erdos_renyi(8, p=0.5, seed=9)
    edges = list(half.edges) + [
        (u + 8, v + 8, w) for (u, v, w) in half.edges
    ]
    from repro.graphs.spec import Graph

    graph = Graph(16, edges, seed=9)
    q_nodes = sorted(rng.sample(range(16), 6))
    entries, lab_to = driver_inputs(graph, q_nodes, 3)
    values = assert_backends_agree(q_nodes, entries, lab_to, graph.n)
    for x in range(8):
        for c in q_nodes:
            if c >= 8:
                assert c not in values[x]


def test_blocked_product_agrees_with_unblocked():
    graph, q_nodes, entries, lab_to = random_instance(21, n=14, q=7)
    ref = local_closure(q_nodes, entries, lab_to, graph.n, backend="python")
    for block in (1, 2, 3, 1000):
        out = local_closure(
            q_nodes, entries, lab_to, graph.n, backend="numpy", block=block
        )
        assert out == ref


def test_empty_and_singleton_blocker_sets():
    graph, _, _, _ = random_instance(2, n=8)
    h = 2
    assert local_closure([], [], {}, graph.n) == [{} for _ in range(graph.n)]
    entries, lab_to = driver_inputs(graph, [3], h)
    assert_backends_agree([3], entries, lab_to, graph.n)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="closure backend"):
        local_closure([0], [], {0: [INF_COST]}, 1, backend="cuda")
    assert set(BACKENDS) == {"auto", "numpy", "python"}


# ---------------------------------------------------------------------------
# overflow edges


def test_overflow_weights_raise_on_explicit_numpy_backend():
    # Weights near 2^45 grid ticks: 2 * (q + 1) * max exceeds the int64
    # safety margin, so the exact encoding must refuse.
    big = float(1 << 45)
    lab_to = {0: [(big, 1, 1), (0.0, 0, 0)], 1: [(big, 1, 1), (big, 1, 1)]}
    entries = [(0, 1, big, 1, 1), (1, 0, big, 1, 1)]
    with pytest.raises(ClosureOverflow):
        local_closure([0, 1], entries, lab_to, 2, backend="numpy")


def test_overflow_weights_fall_back_to_oracle_on_auto():
    big = quantize_weight(float(1 << 45))
    lab_to = {0: [(big, 1, 1), (0.0, 0, 0)], 1: [(big, 1, 1), (big, 1, 1)]}
    entries = [(0, 1, big, 1, 1), (1, 0, big, 1, 1)]
    auto = local_closure([0, 1], entries, lab_to, 2, backend="auto")
    ref = local_closure([0, 1], entries, lab_to, 2, backend="python")
    assert auto == ref
    assert auto[0][0][0] == big  # the huge weight survives exactly


def test_large_but_safe_weights_stay_exact():
    # Just inside the refusal margin: must still match the oracle bit for
    # bit (sums of quantized multiples are exact in both domains).
    graph, q_nodes, entries, lab_to = random_instance(
        31, n=10, q=4, wmax=float(1 << 30)
    )
    assert_backends_agree(q_nodes, entries, lab_to, graph.n)


@pytest.mark.parametrize("seed", range(25))
def test_float53_boundary_weights_agree(seed):
    # Tick counts near 2^52: the oracle's float sums would round here
    # while int64 stays exact, so the safety limit must push these onto
    # the oracle under "auto" — either way the backends must agree.
    graph, q_nodes, entries, lab_to = random_instance(
        seed, n=10, q=4, wmax=float(1 << 36)
    )
    ref = local_closure(q_nodes, entries, lab_to, graph.n, backend="python")
    out = local_closure(q_nodes, entries, lab_to, graph.n, backend="auto")
    assert out == ref


# ---------------------------------------------------------------------------
# hypothesis property test (skipped when hypothesis is not installed)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs numpy+pytest only
    HAVE_HYPOTHESIS = False

if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        zero=st.sampled_from([0.0, 0.3]),
        wmax=st.sampled_from([1.0, 7.25, 1000.0]),
    )
    def test_property_numpy_equals_oracle(seed, zero, wmax):
        graph, q_nodes, entries, lab_to = random_instance(
            seed, zero_frac=zero, wmax=wmax
        )
        assert_backends_agree(q_nodes, entries, lab_to, graph.n)


# ---------------------------------------------------------------------------
# end-to-end: the driver's records are identical under either backend


@pytest.mark.parametrize("directed", [False, True])
def test_three_phase_records_identical_across_backends(directed):
    graph = erdos_renyi(24, p=0.2, seed=4, directed=directed)
    h = default_h(graph.n)
    results = {}
    for backend in ("numpy", "python"):
        net = CongestNetwork(graph)
        results[backend] = three_phase_apsp(
            net, graph, h, closure=backend
        )
    a, b = results["numpy"], results["python"]
    assert np.array_equal(a.dist, b.dist)
    assert np.array_equal(a.pred, b.pred)
    assert a.rounds == b.rounds and a.meta["q"] == b.meta["q"]
    a.verify(graph)


def test_deterministic_apsp_closure_parameter():
    graph = erdos_renyi(18, p=0.25, seed=6)
    a = deterministic_apsp(CongestNetwork(graph), graph, closure="python")
    b = deterministic_apsp(CongestNetwork(graph), graph, closure="numpy")
    assert np.array_equal(a.dist, b.dist)
    assert a.meta["closure"] == "python" and b.meta["closure"] == "numpy"
