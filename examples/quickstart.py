#!/usr/bin/env python3
"""Quickstart: run the paper's deterministic APSP on a small network.

Builds a weighted Erdos-Renyi communication network, runs Algorithm 1
(``h = n^{1/3}``, derandomized blocker set, pipelined Step 6), verifies the
output against centralized Dijkstra, and prints the per-step round ledger —
the empirical version of Theorem 1.1's proof.

Usage::

    python examples/quickstart.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro.apsp import deterministic_apsp
from repro.congest import CongestNetwork
from repro.graphs import erdos_renyi


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 27
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    graph = erdos_renyi(n, p=max(0.1, 4.0 / n), seed=seed)
    print(f"graph: {graph}   (hop diameter {graph.und_diameter()})")

    net = CongestNetwork(graph)
    result = deterministic_apsp(net, graph)

    err = result.verify(graph)
    print(f"\nAPSP output verified exact against centralized Dijkstra "
          f"(max deviation {err:.2e})")
    print(f"h = {result.meta['h']}, |Q| = {result.meta['q']}, "
          f"|Q'| = {result.meta.get('q_prime', 0)}, "
          f"|B| = {result.meta.get('bottlenecks', 0)}")
    print(f"total rounds: {result.rounds}\n")

    print("per-step round budget (Theorem 1.1):")
    for label, rounds in sorted(result.step_rounds().items()):
        share = 100.0 * rounds / result.rounds
        print(f"  {label:<28} {rounds:>8} rounds  ({share:4.1f}%)")

    sample = [(0, n - 1), (1, n // 2), (n // 3, 2 * n // 3)]
    print("\nsample distances:")
    for x, t in sample:
        print(f"  delta({x}, {t}) = {result.dist[x, t]:.3f}")


if __name__ == "__main__":
    main()
