"""The shared 3-phase driver across the full strategy grid.

Exactness must be independent of the (h, blocker, delivery) choice — that
independence is what makes the round comparisons of Table 1 / A1 honest.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.congest import CongestNetwork
from repro.apsp import three_phase_apsp
from repro.apsp.driver import BLOCKERS, DELIVERIES, default_h

from conftest import graph_of


@pytest.mark.parametrize(
    "blocker,delivery",
    list(itertools.product(sorted(BLOCKERS), DELIVERIES)),
)
def test_strategy_grid_exact(blocker, delivery):
    g = graph_of("er-sparse")
    net = CongestNetwork(g)
    result = three_phase_apsp(net, g, h=3, blocker=blocker, delivery=delivery)
    result.verify(g)
    result.verify_paths(g)
    assert result.meta["blocker"] == blocker
    assert result.meta["delivery"] == delivery


@pytest.mark.parametrize("kind", ["er-directed", "er-zero", "grid"])
@pytest.mark.parametrize("delivery", DELIVERIES)
def test_families_times_delivery(kind, delivery):
    g = graph_of(kind)
    net = CongestNetwork(g)
    result = three_phase_apsp(
        net, g, h=default_h(g.n), blocker="greedy", delivery=delivery
    )
    result.verify(g)


def test_h_exceeding_diameter_degenerates_gracefully():
    """h >= hop diameter: no length-h paths, empty Q, Step 7 alone solves."""
    g = graph_of("er-dense")
    net = CongestNetwork(g)
    result = three_phase_apsp(net, g, h=g.n, blocker="derandomized")
    result.verify(g)
    assert result.meta["q"] == 0


def test_h_one_maximal_blocker_load():
    """h = 1: every edge is a window; Q must hit every edge's head."""
    g = graph_of("er-sparse")
    net = CongestNetwork(g)
    result = three_phase_apsp(net, g, h=1, blocker="greedy")
    result.verify(g)
    assert result.meta["q"] >= 1


def test_step_labels_depend_on_delivery():
    g = graph_of("er-sparse")
    net = CongestNetwork(g)
    piped = three_phase_apsp(net, g, h=3, delivery="pipelined")
    bcast = three_phase_apsp(net, g, h=3, delivery="broadcast")
    assert any(k.startswith("step6/alg9") for k in piped.step_rounds())
    assert "step6/broadcast" in bcast.step_rounds()
    assert np.allclose(
        np.nan_to_num(piped.dist, posinf=-1),
        np.nan_to_num(bcast.dist, posinf=-1),
    )


def test_meta_counters_consistent():
    g = graph_of("er-sparse")
    net = CongestNetwork(g)
    result = three_phase_apsp(net, g, h=3, delivery="pipelined")
    assert result.meta["q"] >= result.meta.get("bottlenecks", 0)
    assert result.meta["pipeline_rounds"] >= 0
    assert result.rounds == result.stats.rounds
