"""F3 — blocker-set size: Lemma 3.10's ``|Q| = O(n log n / h)``.

Sweep ``n`` and ``h`` across generators; report ``|Q|`` and the ratio
``|Q| * h / (n ln n)`` — the lemma predicts a bounded ratio, and the
constructed sets must stay within a constant factor of the centralized
greedy reference.
"""

from __future__ import annotations

import math

from repro.analysis import render_table
from repro.congest import CongestNetwork
from repro.csssp import build_csssp
from repro.graphs import erdos_renyi, grid2d
from repro.blocker import deterministic_blocker_set
from repro.analysis.trajectory import make_record
from repro.blocker.verify import greedy_reference_size

from _common import emit, emit_records, once


def test_blocker_size_sweep(benchmark):
    cases = []
    for n in (24, 48, 96):
        cases.append((erdos_renyi(n, p=max(0.1, 4.0 / n), seed=13), None))
    cases.append((grid2d(6, 8, seed=3), None))

    def run():
        rows = []
        for g, _ in cases:
            for h in (2, 3, 5):
                net = CongestNetwork(g)
                coll, _ = build_csssp(net, g, range(g.n), h)
                res = deterministic_blocker_set(net, coll)
                ref = greedy_reference_size(coll)
                ratio = res.q * h / (g.n * math.log(max(g.n, 2)))
                rows.append(
                    [g.name, g.n, h, coll.path_count(), res.q, ref,
                     f"{ratio:.3f}",
                     f"{res.q / ref:.2f}" if ref else "n/a"]
                )
        return rows

    rows = once(benchmark, run)
    table = render_table(
        ["graph", "n", "h", "length-h paths", "|Q| (Alg 2')",
         "greedy reference", "|Q|h/(n ln n)", "|Q|/greedy"],
        rows,
        title="F3: blocker-set size vs Lemma 3.10 (ratio must stay bounded)",
    )
    emit("fig_blocker_size", table)
    emit_records("fig_blocker_size", [
        make_record(
            "fig_blocker_size", f"{row[0]}-h{row[2]}",
            exact={"paths": row[3], "q": row[4], "greedy_ref": row[5]},
        )
        for row in rows
    ])
